#ifndef GPUDB_CORE_GROUP_BY_H_
#define GPUDB_CORE_GROUP_BY_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/core/aggregates.h"
#include "src/core/compare.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// One output row of a GROUP BY query.
struct GroupByRow {
  uint32_t key = 0;         ///< group key value
  uint64_t count = 0;       ///< records in the group
  double aggregate = 0.0;   ///< aggregate of the value attribute
};

/// \brief GROUP BY over a low-cardinality integer key -- the OLAP roll-up
/// primitive the paper lists as future work (Section 7: "data cube roll up
/// and drill-down").
///
/// Built entirely from the paper's machinery:
///  1. distinct keys are discovered in ascending order by repeating
///     "smallest key greater than the previous one", each step a selection
///     (key > prev) plus a masked MIN (Routine 4.5);
///  2. each group's members are marked with one equality selection
///     (Routine 4.1 storing into stencil);
///  3. the group aggregate runs masked by that stencil selection
///     (occlusion COUNT / Routine 4.6 SUM / Routine 4.5 order statistics).
///
/// `max_groups` bounds the distinct-key cardinality; exceeding it returns
/// ResourceExhausted (GROUP BY on a high-cardinality key does not fit this
/// execution model -- each group costs rendering passes).
[[nodiscard]] Result<std::vector<GroupByRow>> GroupByAggregate(
    gpu::Device* device, const AttributeBinding& key_attr, int key_bits,
    const AttributeBinding& value_attr, int value_bits, AggregateKind kind,
    uint64_t max_groups = 256);

/// \brief Distinct values of an integer attribute in ascending order, via
/// the same next-largest discovery loop. Costs one selection pass plus a
/// bit-search per distinct value.
[[nodiscard]] Result<std::vector<uint32_t>> DistinctValues(gpu::Device* device,
                                             const AttributeBinding& attr,
                                             int bit_width,
                                             uint64_t max_values = 4096);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_GROUP_BY_H_
