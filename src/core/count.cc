#include "src/core/count.h"

#include "src/core/state_guard.h"
#include "src/gpu/types.h"

namespace gpudb {
namespace core {

Result<uint64_t> CountSelected(gpu::Device* device, uint8_t selection_value) {
  StateGuard guard(device);
  device->UseProgram(nullptr);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(false);
  device->SetStencilTest(true, gpu::CompareOp::kEqual, selection_value);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kKeep);
  GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
  GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
  return device->EndOcclusionQuery();
}

Result<uint64_t> CountAll(gpu::Device* device) {
  StateGuard guard(device);
  device->UseProgram(nullptr);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(false);
  device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);
  GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
  GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
  return device->EndOcclusionQuery();
}

Status ZeroStencilValue(gpu::Device* device, uint8_t from) {
  StateGuard guard(device);
  device->UseProgram(nullptr);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(false);
  device->SetStencilTest(true, gpu::CompareOp::kEqual, from);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kZero);
  return device->RenderQuad(0.0f);
}

}  // namespace core
}  // namespace gpudb
