#include "src/core/cpu_tier.h"

#include <algorithm>
#include <string>

#include "src/core/depth_encoding.h"
#include "src/cpu/aggregate.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/predicate/cnf.h"

namespace gpudb {
namespace core {
namespace cpu_tier {

Result<std::vector<uint8_t>> SelectionMask(const db::Table& table,
                                           const predicate::ExprPtr& where) {
  const uint64_t n = table.num_rows();
  if (where == nullptr) return std::vector<uint8_t>(n, 1);
  GPUDB_RETURN_NOT_OK(where->Validate(table));
  auto cnf = predicate::ToCnf(where);
  std::vector<uint8_t> mask;
  if (cnf.ok()) {
    GPUDB_ASSIGN_OR_RETURN(uint64_t selected,
                           cpu::CnfScan(table, cnf.ValueOrDie(), &mask));
    (void)selected;
    return mask;
  }
  // CNF distribution blew up; evaluate the DNF row by row instead (the CPU
  // tier has no stencil budget, so either normal form works).
  auto dnf = predicate::ToDnf(where);
  if (!dnf.ok()) return cnf.status();  // mirror Where(): both forms failed
  mask.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    mask[i] = dnf.ValueOrDie().EvaluateRow(table, i) ? 1 : 0;
  }
  return mask;
}

Result<uint64_t> Count(const db::Table& table,
                       const predicate::ExprPtr& where) {
  GPUDB_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                         SelectionMask(table, where));
  return cpu::CountMask(mask);
}

Result<std::vector<uint32_t>> RowIds(const db::Table& table,
                                     const predicate::ExprPtr& where) {
  GPUDB_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                         SelectionMask(table, where));
  std::vector<uint32_t> rows;
  for (uint32_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) rows.push_back(i);
  }
  return rows;
}

Result<double> Aggregate(const db::Table& table, AggregateKind kind,
                         std::string_view column,
                         const predicate::ExprPtr& where) {
  GPUDB_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(column));
  const db::Column& c = table.column(col);
  if (kind != AggregateKind::kCount && c.type() != db::ColumnType::kInt24) {
    return Status::NotImplemented(
        "GPU aggregation of '" + std::string(column) +
        "' requires an integer column (Accumulator and KthLargest operate on "
        "binary representations; paper Sections 4.3.2-4.3.3)");
  }
  GPUDB_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                         SelectionMask(table, where));
  const uint64_t count = cpu::CountMask(mask);
  switch (kind) {
    case AggregateKind::kCount:
      return static_cast<double>(count);
    case AggregateKind::kSum:
      return static_cast<double>(cpu::MaskedSumInt(c.values(), mask));
    case AggregateKind::kAvg:
      if (count == 0) {
        return Status::InvalidArgument("AVG over empty selection");
      }
      return static_cast<double>(cpu::MaskedSumInt(c.values(), mask)) /
             static_cast<double>(count);
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      if (count == 0) {
        // Same status Min/MaxValue produce via KthSmallest/Largest(k=1).
        return Status::OutOfRange("k=1 out of range for 0 records");
      }
      uint32_t best = 0;
      bool first = true;
      for (size_t i = 0; i < mask.size(); ++i) {
        if (!mask[i]) continue;
        const uint32_t v = c.int_value(i);
        if (first || (kind == AggregateKind::kMin ? v < best : v > best)) {
          best = v;
          first = false;
        }
      }
      return static_cast<double>(best);
    }
    case AggregateKind::kMedian: {
      if (count == 0) {
        return Status::InvalidArgument("median over empty selection");
      }
      std::vector<uint32_t> vals;
      vals.reserve(count);
      for (size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) vals.push_back(c.int_value(i));
      }
      // GPU MedianValue = KthSmallest((count + 1) / 2).
      const size_t idx = (count + 1) / 2 - 1;
      std::nth_element(vals.begin(), vals.begin() + idx, vals.end());
      return static_cast<double>(vals[idx]);
    }
  }
  return Status::Internal("unknown aggregate kind");
}

Result<uint32_t> KthLargest(const db::Table& table, std::string_view column,
                            uint64_t k, const predicate::ExprPtr& where) {
  GPUDB_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(column));
  const db::Column& c = table.column(col);
  if (c.type() != db::ColumnType::kInt24) {
    return Status::NotImplemented(
        "KthLargest requires an integer column (Routine 4.5 builds the "
        "result bit by bit)");
  }
  GPUDB_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                         SelectionMask(table, where));
  const uint64_t n = cpu::CountMask(mask);
  if (k == 0 || k > n) {
    return Status::OutOfRange("k=" + std::to_string(k) + " out of range for " +
                              std::to_string(n) + " records");
  }
  // The paper's Section 5.9 CPU baseline: QuickSelect over the selection.
  GPUDB_ASSIGN_OR_RETURN(float v,
                         cpu::MaskedQuickSelectLargest(c.values(), mask, k));
  return static_cast<uint32_t>(v);
}

Result<uint64_t> RangeCount(const db::Table& table, std::string_view column,
                            double low, double high) {
  GPUDB_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(column));
  if (low > high) {
    return Status::InvalidArgument("range query with low > high");
  }
  const db::Column& c = table.column(col);
  // Mirror the depth-bounds test exactly: compare 24-bit quantized depths,
  // not raw floats, so fractional bounds truncate identically on both tiers.
  const DepthEncoding enc = DepthEncoding::ForColumn(c);
  const uint32_t lo = enc.EncodeQuantized(low);
  const uint32_t hi = enc.EncodeQuantized(high);
  uint64_t count = 0;
  for (float v : c.values()) {
    const uint32_t d = enc.EncodeQuantized(v);
    if (d >= lo && d <= hi) ++count;
  }
  return count;
}

}  // namespace cpu_tier
}  // namespace core
}  // namespace gpudb
