#ifndef GPUDB_CORE_OP_SPAN_H_
#define GPUDB_CORE_OP_SPAN_H_

#include <string_view>

#include "src/common/trace.h"
#include "src/gpu/counters.h"
#include "src/gpu/device.h"
#include "src/gpu/perf_model.h"

namespace gpudb {
namespace core {

/// \brief TraceSpan that attributes simulated GPU time to an operator.
///
/// On construction it snapshots the device's hardware counters; on
/// destruction it prices the counter delta with PerfModel and tags the span
/// with the full GpuTimeBreakdown (fill/depth-write/setup/readback split),
/// pass and fragment counts, and bytes moved. EXPLAIN ANALYZE reads these
/// tags back to print the per-operator cost tree.
///
/// Nested GpuOpSpans overlap by design (a parent's delta includes its
/// children's); tree consumers compute self-time as total minus children.
/// When tracing is disabled the constructor costs one atomic load and no
/// counter copy.
class GpuOpSpan {
 public:
  GpuOpSpan(std::string_view name, gpu::Device* device)
      : span_(name), device_(device) {
    if (span_.active()) before_ = device_->counters();
  }

  ~GpuOpSpan() {
    if (!span_.active()) return;
    const gpu::DeviceCounters delta =
        gpu::DeltaSince(before_, device_->counters());
    const gpu::GpuTimeBreakdown b = gpu::PerfModel().Estimate(delta);
    span_.AddTag("passes", delta.passes);
    span_.AddTag("fragments", delta.fragments_generated);
    span_.AddTag("fragments_passed", delta.fragments_passed);
    span_.AddTag("occlusion_readbacks", delta.occlusion_readbacks);
    span_.AddTag("bytes_uploaded", delta.bytes_uploaded);
    span_.AddTag("bytes_read_back", delta.bytes_read_back);
    span_.AddTag("texture_swap_ins", delta.texture_swap_ins);
    span_.AddTag("fill_ms", b.fill_ms);
    span_.AddTag("depth_write_ms", b.depth_write_ms);
    span_.AddTag("setup_ms", b.setup_ms);
    span_.AddTag("occl_readback_ms", b.readback_ms);
    span_.AddTag("upload_ms", b.upload_ms);
    span_.AddTag("swap_ms", b.swap_ms);
    span_.AddTag("buffer_readback_ms", b.buffer_readback_ms);
    span_.AddTag("compute_ms", b.ComputeMs());
    span_.AddTag("total_ms", b.TotalMs());
  }

  GpuOpSpan(const GpuOpSpan&) = delete;
  GpuOpSpan& operator=(const GpuOpSpan&) = delete;

  bool active() const { return span_.active(); }

  /// Extra operator-specific tags (selectivity, k, bit width, ...).
  template <typename T>
  void AddTag(std::string_view key, T value) {
    span_.AddTag(key, value);
  }

 private:
  TraceSpan span_;
  gpu::Device* device_;
  gpu::DeviceCounters before_;
};

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_OP_SPAN_H_
