#include "src/core/spatial_join.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/core/state_guard.h"
#include "src/gpu/geometry.h"

namespace gpudb {
namespace core {

namespace {

struct Box {
  float x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  bool Intersects(const Box& other) const {
    return x0 <= other.x1 && other.x0 <= x1 && y0 <= other.y1 &&
           other.y0 <= y1;
  }
};

Box BoundingBox(const Polygon2D& p) {
  Box box{p.vertices[0].first, p.vertices[0].second, p.vertices[0].first,
          p.vertices[0].second};
  for (const auto& [x, y] : p.vertices) {
    box.x0 = std::min(box.x0, x);
    box.y0 = std::min(box.y0, y);
    box.x1 = std::max(box.x1, x);
    box.y1 = std::max(box.y1, y);
  }
  return box;
}

Status ValidatePolygon(const gpu::Device& device, const Polygon2D& p) {
  if (p.vertices.size() < 3) {
    return Status::InvalidArgument("polygon needs at least 3 vertices");
  }
  const auto w = static_cast<float>(device.framebuffer().width());
  const auto h = static_cast<float>(device.framebuffer().height());
  for (size_t i = 0; i < p.vertices.size(); ++i) {
    const auto& [x, y] = p.vertices[i];
    if (x < 0 || y < 0 || x > w || y > h) {
      return Status::OutOfRange(
          "polygon vertex outside the framebuffer window");
    }
    const auto& q = p.vertices[(i + 1) % p.vertices.size()];
    const auto& r = p.vertices[(i + 2) % p.vertices.size()];
    const double cross =
        static_cast<double>(q.first - x) * (r.second - q.second) -
        static_cast<double>(q.second - y) * (r.first - q.first);
    if (cross <= 0) {
      return Status::InvalidArgument(
          "polygon must be strictly convex and counter-clockwise");
    }
  }
  return Status::OK();
}

/// Fan triangulation of a convex polygon into a DrawTriangles vertex list.
std::vector<gpu::Vertex> Triangulate(const Polygon2D& p) {
  std::vector<gpu::Vertex> out;
  out.reserve((p.vertices.size() - 2) * 3);
  auto vertex = [](const std::pair<float, float>& v) {
    gpu::Vertex out_v;
    out_v.position = {v.first, v.second, 0.0f, 1.0f};
    return out_v;
  };
  for (size_t i = 1; i + 1 < p.vertices.size(); ++i) {
    out.push_back(vertex(p.vertices[0]));
    out.push_back(vertex(p.vertices[i]));
    out.push_back(vertex(p.vertices[i + 1]));
  }
  return out;
}

gpu::ScissorRect ClipToPixels(const Box& box, const gpu::Device& device) {
  gpu::ScissorRect rect;
  rect.x0 = static_cast<uint32_t>(std::max(0.0f, std::floor(box.x0)));
  rect.y0 = static_cast<uint32_t>(std::max(0.0f, std::floor(box.y0)));
  rect.x1 = std::min(device.framebuffer().width(),
                     static_cast<uint32_t>(std::ceil(box.x1)));
  rect.y1 = std::min(device.framebuffer().height(),
                     static_cast<uint32_t>(std::ceil(box.y1)));
  return rect;
}

/// The two-pass screen-space test, assuming validation and bbox pruning are
/// already done. `scissor` bounds the work to the pair's overlap region.
Result<bool> OverlapTest(gpu::Device* device, const Polygon2D& a,
                         const Polygon2D& b, const gpu::ScissorRect& scissor) {
  StateGuard guard(device);
  device->UseProgram(nullptr);
  // Polygons are given in window coordinates; the join owns the vertex
  // stage for its two passes (the guard restores any user transform).
  device->ResetTransform();
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(false);
  device->state().scissor_test_enabled = true;
  device->state().scissor = scissor;
  device->ClearStencil(0);

  // Pass 1: rasterize A's footprint into the stencil.
  device->SetStencilTest(true, gpu::CompareOp::kAlways, 1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kReplace);
  GPUDB_RETURN_NOT_OK(device->DrawTriangles(Triangulate(a)));

  // Pass 2: count B's pixels covered by A's footprint.
  device->SetStencilTest(true, gpu::CompareOp::kEqual, 1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kKeep);
  GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
  const Status render = device->DrawTriangles(Triangulate(b));
  GPUDB_ASSIGN_OR_RETURN(uint64_t count, device->EndOcclusionQuery());
  GPUDB_RETURN_NOT_OK(render);
  return count > 0;
}

}  // namespace

bool ConvexPolygonsIntersect(const Polygon2D& a, const Polygon2D& b) {
  // Separating axis theorem: two convex polygons are disjoint iff some edge
  // normal of either polygon separates their projections.
  auto project = [](const Polygon2D& poly, double nx, double ny,
                    double* lo, double* hi) {
    *lo = 1e300;
    *hi = -1e300;
    for (const auto& [x, y] : poly.vertices) {
      const double d = nx * x + ny * y;
      *lo = std::min(*lo, d);
      *hi = std::max(*hi, d);
    }
  };
  for (const Polygon2D* poly : {&a, &b}) {
    const size_t n = poly->vertices.size();
    for (size_t i = 0; i < n; ++i) {
      const auto& p = poly->vertices[i];
      const auto& q = poly->vertices[(i + 1) % n];
      const double nx = static_cast<double>(q.second) - p.second;
      const double ny = static_cast<double>(p.first) - q.first;
      double a_lo, a_hi, b_lo, b_hi;
      project(a, nx, ny, &a_lo, &a_hi);
      project(b, nx, ny, &b_lo, &b_hi);
      if (a_hi < b_lo || b_hi < a_lo) return false;  // separated
    }
  }
  return true;
}

Result<bool> PolygonsOverlapScreenSpace(gpu::Device* device,
                                        const Polygon2D& a,
                                        const Polygon2D& b) {
  if (device == nullptr) {
    return Status::InvalidArgument("null device");
  }
  GPUDB_RETURN_NOT_OK(ValidatePolygon(*device, a));
  GPUDB_RETURN_NOT_OK(ValidatePolygon(*device, b));
  const Box box_a = BoundingBox(a);
  const Box box_b = BoundingBox(b);
  if (!box_a.Intersects(box_b)) return false;
  const Box overlap{std::max(box_a.x0, box_b.x0), std::max(box_a.y0, box_b.y0),
                    std::min(box_a.x1, box_b.x1),
                    std::min(box_a.y1, box_b.y1)};
  const gpu::ScissorRect scissor = ClipToPixels(overlap, *device);
  if (scissor.x0 >= scissor.x1 || scissor.y0 >= scissor.y1) return false;
  return OverlapTest(device, a, b, scissor);
}

Result<std::vector<std::pair<uint32_t, uint32_t>>> SpatialOverlapJoin(
    gpu::Device* device, const std::vector<Polygon2D>& layer_a,
    const std::vector<Polygon2D>& layer_b) {
  if (device == nullptr) {
    return Status::InvalidArgument("null device");
  }
  for (const Polygon2D& p : layer_a) {
    GPUDB_RETURN_NOT_OK(ValidatePolygon(*device, p));
  }
  for (const Polygon2D& p : layer_b) {
    GPUDB_RETURN_NOT_OK(ValidatePolygon(*device, p));
  }
  std::vector<Box> boxes_a(layer_a.size());
  std::vector<Box> boxes_b(layer_b.size());
  for (size_t i = 0; i < layer_a.size(); ++i) {
    boxes_a[i] = BoundingBox(layer_a[i]);
  }
  for (size_t j = 0; j < layer_b.size(); ++j) {
    boxes_b[j] = BoundingBox(layer_b[j]);
  }

  std::vector<std::pair<uint32_t, uint32_t>> result;
  for (size_t i = 0; i < layer_a.size(); ++i) {
    for (size_t j = 0; j < layer_b.size(); ++j) {
      // Cooperative cancellation between per-pair tests (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      if (!boxes_a[i].Intersects(boxes_b[j])) continue;  // CPU bbox prune
      const Box overlap{std::max(boxes_a[i].x0, boxes_b[j].x0),
                        std::max(boxes_a[i].y0, boxes_b[j].y0),
                        std::min(boxes_a[i].x1, boxes_b[j].x1),
                        std::min(boxes_a[i].y1, boxes_b[j].y1)};
      const gpu::ScissorRect scissor = ClipToPixels(overlap, *device);
      if (scissor.x0 >= scissor.x1 || scissor.y0 >= scissor.y1) continue;
      GPUDB_ASSIGN_OR_RETURN(
          bool overlaps, OverlapTest(device, layer_a[i], layer_b[j], scissor));
      if (overlaps) {
        result.emplace_back(static_cast<uint32_t>(i),
                            static_cast<uint32_t>(j));
      }
    }
  }
  return result;
}

}  // namespace core
}  // namespace gpudb
