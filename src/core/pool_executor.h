#ifndef GPUDB_CORE_POOL_EXECUTOR_H_
#define GPUDB_CORE_POOL_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/core/aggregates.h"
#include "src/core/executor.h"
#include "src/core/resilience.h"
#include "src/db/sharding.h"
#include "src/gpu/device_pool.h"
#include "src/predicate/expr.h"

namespace gpudb {
namespace core {

/// \brief Per-query outcome of the scatter/gather path, for query-log
/// attribution (which failure domain served / failed) and tests.
struct PoolQueryStats {
  uint64_t failovers = 0;        ///< Shard hops off their primary device.
  int first_device = -1;         ///< Primary device of the first shard run.
  int first_failed_device = -1;  ///< First device a shard hopped off, or -1.
  bool cpu_fallback = false;     ///< Some shard was answered by the CPU tier.
};

/// \brief Scatter/gather executor over a ShardedTable on a DevicePool
/// (DESIGN.md §15).
///
/// Each decomposable operator runs shard by shard on the shard's primary
/// device and the per-shard answers are recombined:
///
///   Count / RangeCount : sum of per-shard counts
///   SelectRowIds       : per-shard ids + row_begin, concatenated in order
///   SelectBitmap       : per-shard bitmaps concatenated
///   SUM                : sum of exact per-shard integer sums
///   MIN / MAX          : min/max over non-empty shards
///   AVG                : (sum of shard sums) / (sum of shard counts)
///
/// All of these are bit-exact against single-device execution: integer
/// columns use the data-independent exact depth encoding, sums are exact
/// uint64 accumulations, and range sharding preserves row order (see
/// db/sharding.h). Non-decomposable operators (MEDIAN, KTH_LARGEST,
/// GROUP BY, ORDER BY) are *single-device* operators per the EXTENDING.md
/// rule and return kNotImplemented here; callers route them to a plain
/// Executor.
///
/// Failure domains: a shard whose device is refused by the pool
/// (quarantined / force-lost) or faults through its retries fails over to
/// its replica device, then to the CPU tier -- each hop counted in
/// `pool.failovers`. User errors propagate immediately without failover.
///
/// Thread model: one PoolExecutor serves one session (its executor cache is
/// not locked); devices are shared across sessions and every dispatch holds
/// the pool's per-device lease, so concurrent sessions interleave at shard
/// granularity.
class PoolExecutor {
 public:
  /// Both pointers must outlive the executor. Every shard must fit the
  /// pool's device framebuffers.
  [[nodiscard]] static Result<std::unique_ptr<PoolExecutor>> Make(
      gpu::DevicePool* pool, const db::ShardedTable* sharded);

  [[nodiscard]] Result<uint64_t> Count(const predicate::ExprPtr& where);
  [[nodiscard]] Result<std::vector<uint8_t>> SelectBitmap(
      const predicate::ExprPtr& where);
  [[nodiscard]] Result<std::vector<uint32_t>> SelectRowIds(
      const predicate::ExprPtr& where);
  [[nodiscard]] Result<double> Aggregate(AggregateKind kind,
                                         std::string_view column,
                                         const predicate::ExprPtr& where =
                                             nullptr);
  [[nodiscard]] Result<uint64_t> RangeCount(std::string_view column,
                                            double low, double high);

  /// True for aggregates the scatter/gather path can recombine bit-exactly
  /// (COUNT/SUM/AVG/MIN/MAX); MEDIAN is an order statistic and stays
  /// single-device.
  static bool ShardableAggregate(AggregateKind kind);

  /// Resilience applied inside each per-shard attempt (retry/deadline); the
  /// CPU rung of the ladder is governed by the failover policy, not the
  /// per-executor flag, so `allow_cpu_fallback` is forced off on shard
  /// executors -- the pool owns the ladder.
  void set_resilience_options(const ResilienceOptions& options);
  void set_failover_policy(const FailoverPolicy& policy) {
    failover_ = policy;
  }

  const PoolQueryStats& last_stats() const { return last_stats_; }
  const db::ShardedTable& sharded() const { return *sharded_; }
  gpu::DevicePool& pool() { return *pool_; }

 private:
  PoolExecutor(gpu::DevicePool* pool, const db::ShardedTable* sharded)
      : pool_(pool), sharded_(sharded) {}

  /// The cached executor for (shard, device); created on first use. Must be
  /// called with the device's lease held.
  [[nodiscard]] Result<Executor*> ShardExecutorFor(size_t shard_index, int device_id);

  /// Runs one shard through the failover ladder: primary -> replica -> CPU.
  template <typename T>
  [[nodiscard]] Result<T> RunShard(
      size_t shard_index, const char* op_name,
      const std::function<Result<T>(Executor&)>& gpu_op,
      const std::function<Result<T>(const db::Table&)>& cpu_op);

  /// Per-shard COUNT(*) for the aggregates that must skip empty shards.
  [[nodiscard]] Result<uint64_t> ShardCount(size_t shard_index,
                                            const predicate::ExprPtr& where);

  gpu::DevicePool* pool_;
  const db::ShardedTable* sharded_;
  ResilienceOptions resilience_;
  FailoverPolicy failover_;
  PoolQueryStats last_stats_;
  std::map<std::pair<size_t, int>, std::unique_ptr<Executor>> executors_;
};

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_POOL_EXECUTOR_H_
