#include "src/core/spatial.h"

#include <string>

#include "src/core/semilinear.h"

namespace gpudb {
namespace core {

Result<std::vector<HalfPlane>> ConvexPolygonToHalfPlanes(
    const std::vector<std::pair<float, float>>& ccw_vertices) {
  const size_t n = ccw_vertices.size();
  if (n < 3) {
    return Status::InvalidArgument("a polygon needs at least 3 vertices");
  }
  // Convexity + orientation check: every consecutive cross product must be
  // positive (strictly convex, counter-clockwise).
  for (size_t i = 0; i < n; ++i) {
    const auto& p = ccw_vertices[i];
    const auto& q = ccw_vertices[(i + 1) % n];
    const auto& r = ccw_vertices[(i + 2) % n];
    const double cross =
        static_cast<double>(q.first - p.first) * (r.second - q.second) -
        static_cast<double>(q.second - p.second) * (r.first - q.first);
    if (cross <= 0) {
      return Status::InvalidArgument(
          "vertices must form a strictly convex counter-clockwise polygon "
          "(violated at vertex " +
          std::to_string((i + 1) % n) + ")");
    }
  }
  std::vector<HalfPlane> planes;
  planes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& p = ccw_vertices[i];
    const auto& q = ccw_vertices[(i + 1) % n];
    // Interior of a CCW polygon is left of each edge:
    //   cross(q - p, r - p) >= 0
    // which rearranges to  (ey)x + (-ex)y <= ey*px - ex*py.
    const float ex = q.first - p.first;
    const float ey = q.second - p.second;
    HalfPlane h;
    h.a = ey;
    h.b = -ex;
    h.c = ey * p.first - ex * p.second;
    planes.push_back(h);
  }
  return planes;
}

Result<StencilSelection> SelectPointsInConvexRegion(
    gpu::Device* device, gpu::TextureId xy_texture,
    const std::vector<HalfPlane>& half_planes) {
  if (half_planes.empty()) {
    return Status::InvalidArgument("no half-planes given");
  }
  // Each half-plane is one semi-linear predicate over the (x, y) channels;
  // membership is their conjunction (Routine 4.3 with singleton clauses).
  std::vector<GpuClause> clauses;
  clauses.reserve(half_planes.size());
  for (const HalfPlane& h : half_planes) {
    SemilinearQuery query;
    query.weights = {h.a, h.b, 0, 0};
    query.op = gpu::CompareOp::kLessEqual;
    query.b = h.c;
    clauses.push_back({GpuPredicate::Semilinear(xy_texture, query)});
  }
  return EvalCnf(device, clauses);
}

Result<StencilSelection> SelectPointsInConvexPolygon(
    gpu::Device* device, gpu::TextureId xy_texture,
    const std::vector<std::pair<float, float>>& ccw_vertices) {
  GPUDB_ASSIGN_OR_RETURN(std::vector<HalfPlane> planes,
                         ConvexPolygonToHalfPlanes(ccw_vertices));
  return SelectPointsInConvexRegion(device, xy_texture, planes);
}

bool PointInHalfPlanes(float x, float y,
                       const std::vector<HalfPlane>& half_planes) {
  for (const HalfPlane& h : half_planes) {
    if (h.a * x + h.b * y > h.c) return false;
  }
  return true;
}

}  // namespace core
}  // namespace gpudb
