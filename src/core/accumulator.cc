#include "src/core/accumulator.h"

#include <string>

#include "src/common/bit_util.h"
#include "src/core/op_span.h"
#include "src/core/state_guard.h"
#include "src/gpu/fragment_program.h"

namespace gpudb {
namespace core {

Result<uint64_t> Accumulate(gpu::Device* device, gpu::TextureId texture,
                            int channel, int bit_width,
                            const AccumulatorOptions& options) {
  if (bit_width < 1 || bit_width > 24) {
    return Status::InvalidArgument("bit_width must be in [1,24], got " +
                                   std::to_string(bit_width));
  }
  GpuOpSpan op("Accumulate", device);
  op.AddTag("bit_width", bit_width);
  op.AddTag("alpha_test", options.use_alpha_test ? "true" : "false");
  StateGuard guard(device);
  GPUDB_RETURN_NOT_OK(device->BindTexture(texture));
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(false);
  // Line 1 of Routine 4.6: alpha test passes with alpha >= 0.5 (disabled in
  // the in-program-KILL ablation variant).
  device->SetAlphaTest(options.use_alpha_test, gpu::CompareOp::kGreaterEqual,
                       0.5f);
  if (options.selection.has_value()) {
    device->SetStencilTest(true, gpu::CompareOp::kEqual,
                           options.selection->valid_value);
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         gpu::StencilOp::kKeep);
  } else {
    device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);
  }

  uint64_t sum = 0;
  for (int i = 0; i < bit_width; ++i) {
    // Cooperative cancellation between TestBit passes.
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    // Lines 4-8: count the records with bit i set, weight by 2^i.
    const gpu::TestBitProgram alpha_program(channel, i);
    const gpu::TestBitKillProgram kill_program(channel, i);
    if (options.use_alpha_test) {
      device->UseProgram(&alpha_program);
    } else {
      device->UseProgram(&kill_program);
    }
    GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
    GPUDB_RETURN_NOT_OK(device->RenderTexturedQuad());
    GPUDB_ASSIGN_OR_RETURN(uint64_t count, device->EndOcclusionQuery());
    sum += count * bit_util::PowerOfTwo(i);
    device->UseProgram(nullptr);
  }
  return sum;
}

Result<double> Average(gpu::Device* device, gpu::TextureId texture,
                       int channel, int bit_width,
                       const AccumulatorOptions& options) {
  const uint64_t count = options.selection.has_value()
                             ? options.selection->count
                             : device->viewport_pixels();
  if (count == 0) {
    return Status::InvalidArgument("AVG over empty selection");
  }
  GPUDB_ASSIGN_OR_RETURN(
      uint64_t sum, Accumulate(device, texture, channel, bit_width, options));
  return static_cast<double>(sum) / static_cast<double>(count);
}

}  // namespace core
}  // namespace gpudb
