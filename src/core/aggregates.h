#ifndef GPUDB_CORE_AGGREGATES_H_
#define GPUDB_CORE_AGGREGATES_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/common/result.h"
#include "src/core/compare.h"
#include "src/core/eval_cnf.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief The aggregation operators of the paper's SQL fragment (Section 4:
/// "SUM, COUNT, AVG, MIN, MAX defined on individual attributes"), plus
/// MEDIAN since KthLargest provides it for free.
enum class AggregateKind {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kMedian,
};

std::string_view ToString(AggregateKind kind);

/// \brief Dispatches an aggregation over a GPU-resident attribute,
/// optionally restricted to a stencil selection.
///
/// COUNT comes from the selection (occlusion counting); SUM/AVG run the
/// Accumulator (Routine 4.6); MIN/MAX/MEDIAN run KthLargest (Routine 4.5).
/// `bit_width` is the attribute's b_max; it is required for every kind but
/// COUNT.
[[nodiscard]] Result<double> AggregateAttribute(
    gpu::Device* device, AggregateKind kind, const AttributeBinding& attr,
    int bit_width,
    const std::optional<StencilSelection>& selection = std::nullopt);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_AGGREGATES_H_
