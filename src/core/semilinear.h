#ifndef GPUDB_CORE_SEMILINEAR_H_
#define GPUDB_CORE_SEMILINEAR_H_

#include <array>
#include <cstdint>

#include "src/common/result.h"
#include "src/gpu/device.h"
#include "src/gpu/types.h"

namespace gpudb {
namespace core {

/// \brief A semi-linear query `dot(s, a) op b` (Section 4.1.2): a linear
/// combination of up to four attributes (one texture's channels) compared
/// against a scalar.
///
/// Attribute-attribute predicates `a_i op a_j` are the special case
/// s = (1, -1), b = 0 (the paper's rewrite `a_i - a_j op 0`).
struct SemilinearQuery {
  std::array<float, 4> weights = {0, 0, 0, 0};
  gpu::CompareOp op = gpu::CompareOp::kAlways;
  float b = 0.0f;

  /// Attribute-attribute comparison over texture channels `lhs` and `rhs`.
  static SemilinearQuery AttrCompare(int lhs_channel, gpu::CompareOp op,
                                     int rhs_channel);
};

/// \brief Routine 4.2: renders a textured quad with SemilinearFP, which
/// KILLs every fragment whose record fails the query. Survivors are counted
/// with an occlusion query and marked in the stencil buffer (stencil = 1;
/// non-satisfying records keep their cleared 0).
///
/// Returns the number of satisfying records.
[[nodiscard]] Result<uint64_t> SemilinearSelect(gpu::Device* device, gpu::TextureId texture,
                                  const SemilinearQuery& query);

/// \brief Semilinear pass that leaves stencil/occlusion configuration to the
/// caller (used inside EvalCnf clauses): renders the quad with the program
/// installed; fragments failing the query are killed before the stencil
/// stage.
[[nodiscard]] Status SemilinearQuad(gpu::Device* device, gpu::TextureId texture,
                      const SemilinearQuery& query);

/// \brief Semi-linear query over up to EIGHT attributes split across two
/// textures (units 0 and 1) -- the paper's "longer vectors can be split
/// into multiple textures, each with four components" (Section 4.1.2).
/// `weights[0..3]` weight texture_a's channels, `weights[4..7]` texture_b's.
/// Marks satisfying records in the stencil (value 1) and returns the count.
[[nodiscard]] Result<uint64_t> SemilinearSelectWide(gpu::Device* device,
                                      gpu::TextureId texture_a,
                                      gpu::TextureId texture_b,
                                      const std::array<float, 8>& weights,
                                      gpu::CompareOp op, float b);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_SEMILINEAR_H_
