#include "src/core/bitonic_sort.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "src/core/state_guard.h"
#include "src/gpu/fragment_program.h"

namespace gpudb {
namespace core {

uint64_t BitonicStepCount(uint64_t n) {
  if (n <= 1) return 0;
  const uint64_t log_n = std::bit_width(std::bit_ceil(n)) - 1;
  return log_n * (log_n + 1) / 2;
}

Result<std::vector<float>> BitonicSort(gpu::Device* device,
                                       const std::vector<float>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("BitonicSort on empty input");
  }
  const uint64_t n = values.size();
  const uint64_t padded = std::bit_ceil(n);
  if (padded > device->framebuffer().pixel_count()) {
    return Status::ResourceExhausted(
        "padded sort size " + std::to_string(padded) +
        " exceeds the framebuffer; partition the input");
  }

  // Pad with +inf sentinels so they sort to the tail.
  std::vector<float> padded_values = values;
  padded_values.resize(padded, std::numeric_limits<float>::infinity());
  const uint32_t width = static_cast<uint32_t>(
      std::min<uint64_t>(padded, device->framebuffer().width()));
  GPUDB_ASSIGN_OR_RETURN(gpu::Texture tex,
                         gpu::Texture::FromColumns({&padded_values}, width));
  const uint32_t tex_h = tex.height();
  GPUDB_ASSIGN_OR_RETURN(gpu::TextureId src,
                         device->UploadTexture(std::move(tex)));
  // The ping-pong target must cover the padded element range.
  if (uint64_t{width} * tex_h < padded) {
    return Status::Internal("texture does not cover padded range");
  }

  StateGuard guard(device);
  const uint64_t saved_viewport = device->viewport_pixels();
  GPUDB_RETURN_NOT_OK(device->SetViewport(padded));
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(true);

  // Batcher's bitonic network: outer merge size k, inner compare stride j.
  for (uint64_t k = 2; k <= padded; k <<= 1) {
    for (uint64_t j = k >> 1; j >= 1; j >>= 1) {
      // Cooperative cancellation between network steps (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      const gpu::BitonicStepProgram program(j, k);
      GPUDB_RETURN_NOT_OK(device->BindTexture(src));
      device->UseProgram(&program);
      GPUDB_RETURN_NOT_OK(device->RenderTexturedQuad());
      device->UseProgram(nullptr);
      // Ping-pong: the framebuffer color now holds this step's output; copy
      // it back into the source texture for the next step.
      GPUDB_RETURN_NOT_OK(device->CopyColorToTexture(src));
    }
  }

  GPUDB_ASSIGN_OR_RETURN(std::vector<float> sorted,
                         device->ReadTexture(src, 0));
  sorted.resize(n);  // drop the +inf padding (sorted to the tail)
  GPUDB_RETURN_NOT_OK(device->SetViewport(saved_viewport));
  return sorted;
}

Result<SortedPairs> BitonicSortPairs(gpu::Device* device,
                                     const std::vector<float>& keys,
                                     const std::vector<uint32_t>& payloads) {
  if (keys.empty()) {
    return Status::InvalidArgument("BitonicSortPairs on empty input");
  }
  if (keys.size() != payloads.size()) {
    return Status::InvalidArgument("keys and payloads differ in length");
  }
  for (uint32_t p : payloads) {
    if (p >= gpu::kMaxExactInt) {
      return Status::OutOfRange(
          "payload " + std::to_string(p) +
          " not exactly representable in a float channel");
    }
  }
  const uint64_t n = keys.size();
  const uint64_t padded = std::bit_ceil(n);
  if (padded > device->framebuffer().pixel_count()) {
    return Status::ResourceExhausted(
        "padded sort size " + std::to_string(padded) +
        " exceeds the framebuffer; partition the input");
  }

  // Padding sorts to the tail: +inf keys, max payload for tie-breaking.
  std::vector<float> padded_keys = keys;
  padded_keys.resize(padded, std::numeric_limits<float>::infinity());
  std::vector<float> padded_payloads(padded,
                                     static_cast<float>(gpu::kMaxExactInt - 1));
  for (uint64_t i = 0; i < n; ++i) {
    padded_payloads[i] = static_cast<float>(payloads[i]);
  }
  const uint32_t width = static_cast<uint32_t>(
      std::min<uint64_t>(padded, device->framebuffer().width()));
  GPUDB_ASSIGN_OR_RETURN(
      gpu::Texture tex,
      gpu::Texture::FromColumns({&padded_keys, &padded_payloads}, width));
  GPUDB_ASSIGN_OR_RETURN(gpu::TextureId src,
                         device->UploadTexture(std::move(tex)));

  StateGuard guard(device);
  const uint64_t saved_viewport = device->viewport_pixels();
  GPUDB_RETURN_NOT_OK(device->SetViewport(padded));
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(true);

  for (uint64_t k = 2; k <= padded; k <<= 1) {
    for (uint64_t j = k >> 1; j >= 1; j >>= 1) {
      // Cooperative cancellation between network steps (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      const gpu::BitonicPairStepProgram program(j, k);
      GPUDB_RETURN_NOT_OK(device->BindTexture(src));
      device->UseProgram(&program);
      GPUDB_RETURN_NOT_OK(device->RenderTexturedQuad());
      device->UseProgram(nullptr);
      GPUDB_RETURN_NOT_OK(device->CopyColorToTexture(src));
    }
  }

  GPUDB_ASSIGN_OR_RETURN(std::vector<float> sorted_keys,
                         device->ReadTexture(src, 0));
  GPUDB_ASSIGN_OR_RETURN(std::vector<float> sorted_payloads,
                         device->ReadTexture(src, 1));
  SortedPairs out;
  out.keys.assign(sorted_keys.begin(), sorted_keys.begin() + n);
  out.payloads.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    out.payloads[i] = static_cast<uint32_t>(sorted_payloads[i]);
  }
  GPUDB_RETURN_NOT_OK(device->SetViewport(saved_viewport));
  return out;
}

}  // namespace core
}  // namespace gpudb
