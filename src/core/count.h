#ifndef GPUDB_CORE_COUNT_H_
#define GPUDB_CORE_COUNT_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief COUNT via occlusion query (Section 4.3.1): counts the records
/// whose stencil value equals `selection_value` by rendering one quad with
/// the stencil test configured to pass only those pixels.
///
/// This is the selectivity-analysis primitive of Section 5.11: "Given
/// selected data values scattered over a 1000x1000 frame-buffer, we can
/// obtain the number of selected values within 0.25 ms."
[[nodiscard]] Result<uint64_t> CountSelected(gpu::Device* device, uint8_t selection_value);

/// \brief Counts all records in the viewport (COUNT(*) with no WHERE).
[[nodiscard]] Result<uint64_t> CountAll(gpu::Device* device);

/// \brief Utility pass: sets every stencil value equal to `from` to zero
/// (the "if a stencil value on screen is 1, replace it with 0" steps of
/// Routine 4.3, lines 15-18).
[[nodiscard]] Status ZeroStencilValue(gpu::Device* device, uint8_t from);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_COUNT_H_
