#ifndef GPUDB_CORE_EVAL_CNF_H_
#define GPUDB_CORE_EVAL_CNF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/compare.h"
#include "src/core/planner.h"
#include "src/core/semilinear.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief A simple predicate lowered to its GPU execution strategy:
/// attribute-vs-constant comparisons run through the depth test (Routine
/// 4.1); attribute-vs-attribute comparisons are rewritten as semi-linear
/// queries `a_i - a_j op 0` and run through a fragment program (Routine 4.2).
struct GpuPredicate {
  enum class Kind { kDepthCompare, kSemilinear };

  Kind kind = Kind::kDepthCompare;

  // kDepthCompare: attribute op constant.
  AttributeBinding attr;
  gpu::CompareOp op = gpu::CompareOp::kAlways;
  double constant = 0.0;

  // kSemilinear: dot(weights, texture channels) op b.
  gpu::TextureId texture = -1;
  SemilinearQuery query;

  static GpuPredicate DepthCompare(const AttributeBinding& attr,
                                   gpu::CompareOp op, double constant);
  static GpuPredicate Semilinear(gpu::TextureId texture,
                                 const SemilinearQuery& query);
};

/// One CNF clause: disjunction of simple predicates.
using GpuClause = std::vector<GpuPredicate>;

/// \brief Outcome of a GPU selection: which stencil value marks selected
/// records, and how many there are.
struct StencilSelection {
  uint8_t valid_value = 1;  ///< stencil == valid_value <=> record selected.
  uint64_t count = 0;
};

/// \brief Routine 4.3 (EvalCNF): evaluates A_1 AND ... AND A_k where each
/// A_i is a disjunction of simple predicates, using the three stencil values
/// {0, 1, 2} exactly as the paper describes: the stencil is cleared to 1;
/// clause i alternates the valid value between 1 and 2 via INCR/DECR, with a
/// cleanup pass zeroing records that failed the clause.
///
/// On return the stencil buffer holds the selection mask and the result
/// reports the valid stencil value (2 if the clause count is odd, 1 if
/// even) plus the selected-record count (one extra counting pass).
[[nodiscard]] Result<StencilSelection> EvalCnf(gpu::Device* device,
                                 const std::vector<GpuClause>& clauses);

/// One DNF term: conjunction of simple predicates.
using GpuTerm = std::vector<GpuPredicate>;

/// \brief DNF evaluation -- the paper's claimed easy modification of
/// Routine 4.3 ("We can easily modify our algorithm for handling a boolean
/// expression represented as a DNF", Section 4.2). Evaluates
/// T_1 OR T_2 OR ... OR T_k where each T_i is a conjunction.
///
/// Stencil scheme: candidates hold 1, records selected by some term hold 0
/// (ZERO is the only reference-free "stamp" operation, which makes 0 the
/// natural selected marker). Each term runs an EvalConjunction-style chain
/// 1 -> m+1 over the candidates, stamps the survivors to 0, and decrements
/// partial chains back to 1 for the next term.
///
/// On return the stencil marks selected records with value 0 (the returned
/// StencilSelection's valid_value).
[[nodiscard]] Result<StencilSelection> EvalDnf(gpu::Device* device,
                                 const std::vector<GpuTerm>& terms);

/// \brief How a planned selection should execute, plus what actually
/// happened (DESIGN.md §14). The caller fills the plan and cache identity;
/// the planned evaluators fill the outcome counters, which the executor
/// surfaces as EXPLAIN annotations and query-log columns.
struct SelectionExecOptions {
  PassPlan plan;
  /// Depth-plane caching for kDepthCompare predicates. Requires `table`
  /// and per-predicate column indices; predicates without a column identity
  /// fall back to fusion (if planned) or the classic pair.
  bool use_cache = false;
  std::string table;
  uint64_t table_version = 0;

  // Exec-time outcomes.
  int fused_passes = 0;
  int cache_hits = 0;
  int cache_misses = 0;
};

/// \brief EvalCnf with the planner's pass rewrite applied (DESIGN.md §14):
/// chain-collapsed when the plan says so, depth-compare predicates run
/// fused or through the depth-plane cache. Bit-exact with EvalCnf on the
/// same clauses -- same stencil mask, same valid value, same count -- at
/// any thread count; only the pass sequence (and the depth plane's final
/// contents) differ. `opts` must be non-null.
[[nodiscard]] Result<StencilSelection> EvalCnfPlanned(
    gpu::Device* device, const std::vector<GpuClause>& clauses,
    SelectionExecOptions* opts);

/// \brief EvalDnf with per-predicate fusion/caching applied (the DNF
/// skeleton itself -- term chains, stamps, walk-downs -- is already
/// minimal). Bit-exact with EvalDnf. `opts` must be non-null.
[[nodiscard]] Result<StencilSelection> EvalDnfPlanned(
    gpu::Device* device, const std::vector<GpuTerm>& terms,
    SelectionExecOptions* opts);

/// \brief Optimized variant for pure conjunctions (every clause a single
/// predicate), used by the multi-attribute query experiment (Section 5.7)
/// and the ablation benchmark: predicate j passes records from stencil
/// value j to j+1, so no cleanup passes are needed. Supports up to 254
/// conjuncts (8-bit stencil).
[[nodiscard]] Result<StencilSelection> EvalConjunction(
    gpu::Device* device, const std::vector<GpuPredicate>& conjuncts);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_EVAL_CNF_H_
