#include "src/core/kmeans.h"

#include <cmath>
#include <string>

#include "src/core/accumulator.h"
#include "src/core/eval_cnf.h"
#include "src/core/semilinear.h"

namespace gpudb {
namespace core {

namespace {

/// The half-plane separating centroid j's cell from centroid l's:
/// 2(c_l - c_j) . p (<= or <) |c_l|^2 - |c_j|^2, with <= exactly when
/// j < l so boundary points land in the lower-indexed cell.
GpuPredicate CellBoundary(gpu::TextureId xy,
                          const std::pair<float, float>& cj,
                          const std::pair<float, float>& cl, bool closed) {
  SemilinearQuery query;
  query.weights = {2.0f * (cl.first - cj.first),
                   2.0f * (cl.second - cj.second), 0, 0};
  query.op = closed ? gpu::CompareOp::kLessEqual : gpu::CompareOp::kLess;
  query.b = cl.first * cl.first + cl.second * cl.second -
            cj.first * cj.first - cj.second * cj.second;
  return GpuPredicate::Semilinear(xy, query);
}

}  // namespace

Result<KMeansResult> KMeans2D(
    gpu::Device* device, gpu::TextureId xy_texture, int coord_bits,
    const std::vector<std::pair<float, float>>& initial_centroids,
    int max_iterations, float epsilon) {
  const size_t k = initial_centroids.size();
  if (k < 2) {
    return Status::InvalidArgument("k-means needs at least 2 centroids");
  }
  if (coord_bits < 1 || coord_bits > 24) {
    return Status::InvalidArgument("coord_bits must be in [1, 24]");
  }
  if (max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be positive");
  }

  KMeansResult result;
  result.centroids = initial_centroids;
  result.cluster_sizes.assign(k, 0);

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    result.iterations_run = iteration + 1;
    std::vector<std::pair<float, float>> next = result.centroids;
    float max_shift = 0.0f;
    for (size_t j = 0; j < k; ++j) {
      // Assignment: cell j as a conjunction of k-1 half-planes.
      std::vector<GpuClause> clauses;
      clauses.reserve(k - 1);
      for (size_t l = 0; l < k; ++l) {
        if (l == j) continue;
        clauses.push_back({CellBoundary(xy_texture, result.centroids[j],
                                        result.centroids[l],
                                        /*closed=*/j < l)});
      }
      GPUDB_ASSIGN_OR_RETURN(StencilSelection cell, EvalCnf(device, clauses));
      result.cluster_sizes[j] = cell.count;
      if (cell.count == 0) continue;  // empty cluster keeps its centroid

      // Update: masked coordinate sums (Routine 4.6) over the cell.
      AccumulatorOptions options;
      options.selection = cell;
      GPUDB_ASSIGN_OR_RETURN(
          uint64_t sum_x,
          Accumulate(device, xy_texture, /*channel=*/0, coord_bits, options));
      GPUDB_ASSIGN_OR_RETURN(
          uint64_t sum_y,
          Accumulate(device, xy_texture, /*channel=*/1, coord_bits, options));
      next[j] = {static_cast<float>(static_cast<double>(sum_x) /
                                    static_cast<double>(cell.count)),
                 static_cast<float>(static_cast<double>(sum_y) /
                                    static_cast<double>(cell.count))};
      max_shift = std::max(
          max_shift, std::max(std::abs(next[j].first -
                                       result.centroids[j].first),
                              std::abs(next[j].second -
                                       result.centroids[j].second)));
    }
    result.centroids = std::move(next);
    if (max_shift <= epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

KMeansResult CpuKMeans2D(
    const std::vector<uint32_t>& xs, const std::vector<uint32_t>& ys,
    const std::vector<std::pair<float, float>>& initial_centroids,
    int max_iterations, float epsilon) {
  const size_t k = initial_centroids.size();
  KMeansResult result;
  result.centroids = initial_centroids;
  result.cluster_sizes.assign(k, 0);
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    result.iterations_run = iteration + 1;
    std::vector<uint64_t> count(k, 0), sum_x(k, 0), sum_y(k, 0);
    for (size_t i = 0; i < xs.size(); ++i) {
      size_t best = 0;
      double best_d = 1e300;
      for (size_t j = 0; j < k; ++j) {
        const double dx = xs[i] - result.centroids[j].first;
        const double dy = ys[i] - result.centroids[j].second;
        const double d = dx * dx + dy * dy;
        if (d < best_d) {  // strict: ties keep the lower index
          best_d = d;
          best = j;
        }
      }
      ++count[best];
      sum_x[best] += xs[i];
      sum_y[best] += ys[i];
    }
    float max_shift = 0.0f;
    for (size_t j = 0; j < k; ++j) {
      result.cluster_sizes[j] = count[j];
      if (count[j] == 0) continue;
      const std::pair<float, float> next = {
          static_cast<float>(static_cast<double>(sum_x[j]) / count[j]),
          static_cast<float>(static_cast<double>(sum_y[j]) / count[j])};
      max_shift = std::max(
          max_shift,
          std::max(std::abs(next.first - result.centroids[j].first),
                   std::abs(next.second - result.centroids[j].second)));
      result.centroids[j] = next;
    }
    if (max_shift <= epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace core
}  // namespace gpudb
