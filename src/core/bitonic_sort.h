#ifndef GPUDB_CORE_BITONIC_SORT_H_
#define GPUDB_CORE_BITONIC_SORT_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief GPU bitonic merge sort -- the sorting approach the paper discusses
/// (Section 2.2, citing Purcell et al.) and lists under future work
/// (Section 7: "we would like to develop algorithms for other database
/// operations and queries including sorting...").
///
/// The input is padded to the next power of two with +inf sentinels; each of
/// the log n (log n + 1) / 2 network steps runs as one fragment-program pass
/// whose output is copied back into the source texture (the
/// glCopyTexSubImage2D ping-pong of the era). The paper's verdict -- "the
/// algorithm can be quite slow for database operations on large databases"
/// -- is visible in the cost model: ~n log^2 n fragment-program work versus
/// the CPU's n log n comparison sort (see ext_bitonic_sort).
///
/// Returns the values sorted ascending. Works on arbitrary finite floats.
[[nodiscard]] Result<std::vector<float>> BitonicSort(gpu::Device* device,
                                       const std::vector<float>& values);

/// Number of bitonic network steps (rendering passes, excluding the
/// ping-pong copies) needed for `n` elements.
uint64_t BitonicStepCount(uint64_t n);

/// \brief Sorts (key, payload) pairs by key ascending (ties broken by
/// payload ascending), carrying the payload through the network in the
/// texture's second channel. With payload = row id this is ORDER BY:
/// the returned payload vector is the row permutation.
///
/// Keys may be arbitrary finite floats; payloads must be non-negative
/// integers below 2^24 (exact in a float channel).
struct SortedPairs {
  std::vector<float> keys;
  std::vector<uint32_t> payloads;
};
[[nodiscard]] Result<SortedPairs> BitonicSortPairs(gpu::Device* device,
                                     const std::vector<float>& keys,
                                     const std::vector<uint32_t>& payloads);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_BITONIC_SORT_H_
