#include "src/core/resilience.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/metrics.h"

namespace gpudb {
namespace core {

double RetryPolicy::DelayMs(int retry_index) const {
  double delay = backoff_base_ms;
  for (int i = 0; i < retry_index; ++i) delay *= backoff_multiplier;
  return std::min(delay, backoff_max_ms);
}

bool IsTransientFault(const Status& status) {
  return status.IsDeviceLost();
}

bool IsDeviceFault(const Status& status) {
  return status.IsDeviceLost() || status.IsResourceExhausted() ||
         status.IsInternal();
}

void CircuitBreaker::RecordFailure() {
  const bool was_open = open();
  ++consecutive_failures_;
  if (!was_open && open()) {
    MetricsRegistry::Global().counter("resilience.breaker_opened").Increment();
  }
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  skipped_calls_ = 0;
}

bool CircuitBreaker::AllowProbe() {
  ++skipped_calls_;
  if (probe_interval_ <= 0) return false;
  return skipped_calls_ % probe_interval_ == 0;
}

void CircuitBreaker::Reset() {
  consecutive_failures_ = 0;
  skipped_calls_ = 0;
}

void BackoffSleep(double ms, bool real) {
  if (!real || ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace core
}  // namespace gpudb
