#include "src/core/depth_encoding.h"

namespace gpudb {
namespace core {

DepthEncoding DepthEncoding::ExactInt24() {
  return DepthEncoding{1.0 / static_cast<double>(gpu::kDepthMax), 0.0};
}

DepthEncoding DepthEncoding::ExactInt(int bits) {
  const double max_code = static_cast<double>((uint32_t{1} << bits) - 1);
  return DepthEncoding{1.0 / max_code, 0.0};
}

DepthEncoding DepthEncoding::ForColumn(const db::Column& column) {
  if (column.type() == db::ColumnType::kInt24) {
    return ExactInt24();
  }
  const double lo = column.min();
  const double hi = column.max();
  if (hi <= lo) {
    // Degenerate single-valued column: map everything to depth 0.
    return DepthEncoding{0.0, lo};
  }
  return DepthEncoding{1.0 / (hi - lo), lo};
}

}  // namespace core
}  // namespace gpudb
