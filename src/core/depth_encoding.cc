#include "src/core/depth_encoding.h"

namespace gpudb {
namespace core {

DepthEncoding DepthEncoding::ExactInt24() {
  return DepthEncoding{1.0 / static_cast<double>(gpu::kDepthMax), 0.0};
}

DepthEncoding DepthEncoding::ExactInt(int bits) {
  const double max_code = static_cast<double>((uint32_t{1} << bits) - 1);
  return DepthEncoding{1.0 / max_code, 0.0};
}

DepthEncoding DepthEncoding::ForColumn(const db::Column& column) {
  if (column.type() == db::ColumnType::kInt24) {
    return ExactInt24();
  }
  const double lo = column.min();
  const double hi = column.max();
  if (hi <= lo) {
    // Degenerate single-valued column: center the value at depth 0.5 with a
    // unit scale. Comparison constants below the value encode < 0.5 (clamped
    // at 0 by QuantizeDepth) and constants above encode > 0.5 (clamped at 1),
    // so ordering and equality against out-of-domain constants stay correct.
    // A zero scale would collapse value and constant onto the same depth.
    return DepthEncoding{1.0, lo - 0.5};
  }
  return DepthEncoding{1.0 / (hi - lo), lo};
}

}  // namespace core
}  // namespace gpudb
