#ifndef GPUDB_CORE_COMPARE_H_
#define GPUDB_CORE_COMPARE_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/core/depth_encoding.h"
#include "src/gpu/device.h"
#include "src/gpu/types.h"

namespace gpudb {
namespace core {

/// \brief A database attribute resident in GPU texture memory: which texture
/// holds it, which channel within the texture, and how its values map to
/// depth-buffer space.
struct AttributeBinding {
  gpu::TextureId texture = -1;
  int channel = 0;
  DepthEncoding encoding;
  /// Column index within the source table, when the binding came from one
  /// (-1 otherwise). Part of the depth-plane cache key: (table version,
  /// column, encoding) pins down the exact bits CopyToDepth would produce.
  int column = -1;
};

/// \brief CopyToDepth (Routine 4.1): copies attribute values from texture
/// memory into the depth buffer using the paper's 3-instruction fragment
/// program (texture fetch, normalization, copy-to-depth).
///
/// Renders with the depth test forced to ALWAYS (so every value lands) and
/// stencil/alpha tests disabled; color writes are masked off. Restores the
/// previous render state afterwards. This is the expensive transfer the
/// paper's Figure 2 measures and Section 6.1 ("Copy Time") discusses.
[[nodiscard]] Status CopyToDepth(gpu::Device* device, const AttributeBinding& attr);

/// \brief The comparison pass of Compare (Routine 4.1): renders a screen
/// filling quad at the encoded depth of `value` so the rasterizer evaluates
/// `attribute op value` for every record whose attribute is in the depth
/// buffer.
///
/// The predicate reads `stored_attribute op value`; since OpenGL's depth
/// test compares *incoming* against *stored* depth, the quad is rendered
/// with the mirrored operator.
///
/// Depth writes are disabled so the attribute data survives for further
/// passes (KthLargest depends on this). The caller's stencil and occlusion
/// configuration is left untouched, which is what lets this routine serve as
/// the building block for selections (stencil REPLACE), CNF evaluation
/// (stencil INCR/DECR), counting (occlusion query), and masked counting
/// (stencil test EQUAL mask).
[[nodiscard]] Status CompareQuad(gpu::Device* device, gpu::CompareOp op, double value,
                   const DepthEncoding& encoding);

/// \brief The planner's fused copy+compare (DESIGN.md §14): one textured
/// pass that evaluates `attribute op value` without first materializing the
/// attribute in the depth buffer.
///
/// The depth plane is seeded with the encoded constant via ClearDepth, the
/// CopyToDepth program computes each record's normalized attribute as the
/// *incoming* fragment depth, and the depth test runs `op` un-mirrored --
/// incoming (attribute) against stored (constant) is already the predicate's
/// operand order. The fragments that pass are bit-identical to the unfused
/// CopyToDepth + CompareQuad pair, so stencil updates and occlusion counts
/// match exactly; only the depth plane is left different (the constant,
/// not the attribute -- every consumer of attribute depths re-copies first).
///
/// Like CompareQuad, depth writes are off and the caller's stencil, alpha,
/// and occlusion configuration stays live, so the fused pass slots into the
/// same selection/CNF/count positions. The pass is tagged fused in the
/// counters (Device::MarkNextPassFused) with its honest 3-instruction cost.
[[nodiscard]] Status FusedComparePass(gpu::Device* device,
                                      const AttributeBinding& attr,
                                      gpu::CompareOp op, double value);

/// \brief Full Routine 4.1 with counting: CopyToDepth + comparison quad
/// wrapped in an occlusion query. Returns the number of records satisfying
/// `attribute op value`.
[[nodiscard]] Result<uint64_t> Compare(gpu::Device* device, const AttributeBinding& attr,
                         gpu::CompareOp op, double value);

/// \brief Counting pass against attribute values already in the depth
/// buffer (no copy). Honors the current stencil test, so counts can be
/// restricted to a previously computed selection.
[[nodiscard]] Result<uint64_t> CompareCount(gpu::Device* device, gpu::CompareOp op,
                              double value, const DepthEncoding& encoding);

/// \brief Evaluates `attribute op value` and records the outcome in the
/// stencil buffer: selected records get stencil 1, others 0. Returns the
/// selected count. This is the single-predicate selection query of the
/// paper's Section 5.5.
[[nodiscard]] Result<uint64_t> CompareSelect(gpu::Device* device,
                               const AttributeBinding& attr, gpu::CompareOp op,
                               double value);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_COMPARE_H_
