#ifndef GPUDB_CORE_POLYNOMIAL_H_
#define GPUDB_CORE_POLYNOMIAL_H_

#include <array>
#include <cstdint>

#include "src/common/result.h"
#include "src/gpu/device.h"
#include "src/gpu/types.h"

namespace gpudb {
namespace core {

/// \brief A polynomial query `sum_c w_c * a_c^e_c op b` over up to four
/// attributes in one texture's channels -- the extension of the semi-linear
/// query the paper calls out in Section 4.1.2. Semi-linear queries are the
/// special case with every exponent equal to 1.
struct PolynomialQuery {
  std::array<float, 4> weights = {0, 0, 0, 0};
  std::array<int, 4> exponents = {1, 1, 1, 1};  ///< non-negative, <= 8
  gpu::CompareOp op = gpu::CompareOp::kAlways;
  float b = 0.0f;
};

/// \brief Evaluates the polynomial query in a single fragment-program pass:
/// failing records are killed, survivors are counted by occlusion query and
/// marked in the stencil buffer (stencil = 1). Returns the satisfying count.
[[nodiscard]] Result<uint64_t> PolynomialSelect(gpu::Device* device, gpu::TextureId texture,
                                  const PolynomialQuery& query);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_POLYNOMIAL_H_
