#ifndef GPUDB_CORE_EXECUTOR_H_
#define GPUDB_CORE_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/core/aggregates.h"
#include "src/core/compare.h"
#include "src/core/eval_cnf.h"
#include "src/core/group_by.h"
#include "src/core/resilience.h"
#include "src/core/semilinear.h"
#include "src/db/stats.h"
#include "src/db/table.h"
#include "src/gpu/device.h"
#include "src/predicate/cnf.h"
#include "src/predicate/expr.h"

namespace gpudb {
namespace core {

/// \brief Planner rewrite controls for an executor's selections (DESIGN.md
/// §14): pass fusion is on by default (pure win, bit-exact); the depth-plane
/// cache is opt-in (`--plan-cache`) because it trades VRAM for repeated-query
/// latency and needs a table identity for its keys.
struct PlanOptions {
  bool fusion = true;        ///< copy+compare fusion, chain collapse, fused count
  bool plane_cache = false;  ///< depth/stencil plane caching for hot columns
};

/// \brief The public query facade: executes the paper's SQL fragment
/// (SELECT <aggregate|rows> FROM table WHERE <boolean combination>) against
/// a relational table using the GPU algorithms.
///
/// The executor owns the table's GPU residency: each referenced column is
/// uploaded once as a single-channel texture (lazily, cached), and each
/// attribute pair referenced by an attribute-attribute predicate gets a
/// two-channel texture for the semi-linear rewrite.
///
///   gpu::Device device(1000, 1000);
///   GPUDB_ASSIGN_OR_RETURN(auto exec, core::Executor::Make(&device, &table));
///   auto where = predicate::Expr::And(
///       predicate::Expr::Pred(0, gpu::CompareOp::kGreaterEqual, 100.0f),
///       predicate::Expr::Pred(1, gpu::CompareOp::kLess, 5.0f));
///   GPUDB_ASSIGN_OR_RETURN(uint64_t n, exec->Count(where));
class Executor {
 public:
  /// Creates an executor for `table` on `device`. Fails if the table is
  /// empty or does not fit the device framebuffer. Sets the device viewport
  /// to the table's row count. Both pointers must outlive the executor.
  [[nodiscard]] static Result<std::unique_ptr<Executor>> Make(gpu::Device* device,
                                                const db::Table* table);

  /// Evaluates a WHERE clause on the GPU, leaving the selection mask in the
  /// stencil buffer. A null expression selects every record.
  [[nodiscard]] Result<StencilSelection> Where(const predicate::ExprPtr& expr);

  /// SELECT COUNT(*) FROM t WHERE expr.
  [[nodiscard]] Result<uint64_t> Count(const predicate::ExprPtr& where);

  /// Selected rows as a 0/1 bitmap.
  [[nodiscard]] Result<std::vector<uint8_t>> SelectBitmap(const predicate::ExprPtr& where);

  /// Selected rows as sorted row ids.
  [[nodiscard]] Result<std::vector<uint32_t>> SelectRowIds(const predicate::ExprPtr& where);

  /// Selected rows materialized as a new table (same schema). Fails if the
  /// selection is empty.
  [[nodiscard]] Result<db::Table> SelectTable(const predicate::ExprPtr& where);

  /// ORDER BY column DESC LIMIT k, GPU-accelerated: Routine 4.5 finds the
  /// k-th largest value as a threshold, one comparison pass selects the
  /// (at most k + ties) candidate rows, and only those few rows are
  /// materialized and sorted on the CPU. Returns exactly k (row, value)
  /// pairs, ties broken by ascending row id.
  [[nodiscard]] Result<std::vector<std::pair<uint32_t, uint32_t>>> TopK(
      std::string_view column, uint64_t k);

  /// SELECT <agg>(column) FROM t WHERE expr (null = no WHERE).
  [[nodiscard]] Result<double> Aggregate(AggregateKind kind, std::string_view column,
                           const predicate::ExprPtr& where = nullptr);

  /// SELECT the k-th largest value of `column` among rows matching `where`.
  [[nodiscard]] Result<uint32_t> KthLargest(std::string_view column, uint64_t k,
                              const predicate::ExprPtr& where = nullptr);

  /// ORDER BY column: all row ids sorted by the column's value (ties broken
  /// by ascending row id when ascending). Runs the GPU bitonic network over
  /// (key, row id) pairs -- the sorting future-work of Section 7, priced
  /// honestly at n log^2 n fragment operations (see ext_bitonic_sort).
  [[nodiscard]] Result<std::vector<uint32_t>> OrderByRowIds(std::string_view column,
                                              bool ascending = true);

  /// Range query with the depth-bounds fast path (Routine 4.4); equivalent
  /// to Where(Between(...)) but one comparison pass cheaper.
  [[nodiscard]] Result<uint64_t> RangeCount(std::string_view column, double low,
                              double high);

  /// Semi-linear count: #records with dot(weights, columns) op b, over up to
  /// four columns given as (column name, weight) pairs.
  [[nodiscard]] Result<uint64_t> SemilinearCount(
      const std::vector<std::pair<std::string, float>>& weighted_columns,
      gpu::CompareOp op, float b);

  /// SELECT key, <agg>(value) FROM t GROUP BY key, for a low-cardinality
  /// integer key column (OLAP roll-up; see core/group_by.h).
  [[nodiscard]] Result<std::vector<GroupByRow>> GroupBy(std::string_view key_column,
                                          std::string_view value_column,
                                          AggregateKind kind,
                                          uint64_t max_groups = 256);

  /// q-quantiles of an integer column (equi-depth histogram boundaries).
  [[nodiscard]] Result<std::vector<uint32_t>> Quantiles(std::string_view column, int q);

  const db::Table& table() const { return *table_; }
  gpu::Device& device() { return *device_; }

  /// Forwards to Device::SetWorkerThreads: number of parallel pixel
  /// engines for this executor's device. Never changes results -- every
  /// operator is bit-identical at any thread count -- only wall-clock.
  [[nodiscard]] Status SetWorkerThreads(int n) { return device_->SetWorkerThreads(n); }
  int worker_threads() const { return device_->worker_threads(); }

  /// Installs the resilience policy for this executor's public entry
  /// points: bounded retry of transient device faults, a circuit breaker
  /// that degrades to the cpu/ baseline tier, and a per-query wall-clock
  /// deadline armed on the device. See core/resilience.h and DESIGN.md
  /// section 11.
  void set_resilience_options(const ResilienceOptions& options) {
    resilience_ = options;
    breaker_.set_threshold(options.breaker_threshold);
  }
  const ResilienceOptions& resilience_options() const { return resilience_; }

  /// The breaker guarding this executor's GPU path (open = degraded).
  const CircuitBreaker& breaker() const { return breaker_; }

  /// Attaches ANALYZE statistics (owned by the db::Catalog; may be null to
  /// detach). With stats attached, Where() tags each selection span with
  /// `est_rows` -- the histogram-based cardinality estimate -- so EXPLAIN
  /// ANALYZE reports estimated vs. actual rows, and estimates off by more
  /// than 2x increment the `planner.misestimates` counter.
  void set_table_stats(const db::TableStats* stats) { stats_ = stats; }
  const db::TableStats* table_stats() const { return stats_; }

  /// Planner rewrite controls (fusion / plane cache) for this executor's
  /// selections. Never changes results -- only the pass sequence.
  void set_plan_options(const PlanOptions& options) { plan_options_ = options; }
  const PlanOptions& plan_options() const { return plan_options_; }

  /// Identity of the catalog table backing `table_`, for depth-plane cache
  /// keys: cached planes are valid only for (name, version). The version
  /// must be re-read from the catalog before each query -- a stale version
  /// never produces wrong results (the key just misses) but wastes VRAM.
  /// Without an identity the plane cache is inert.
  void SetTableIdentity(std::string name, uint64_t version) {
    table_name_ = std::move(name);
    table_version_ = version;
  }

  /// Planner/cache outcome of the most recent Where(): fused pass count and
  /// plane-cache hits/misses, for query-log columns and tests.
  const SelectionExecOptions& last_exec() const { return last_exec_; }

  /// The GPU binding (texture/channel/encoding) for a column; uploads the
  /// column texture on first use. Exposed for benchmarks that drive the
  /// low-level routines directly.
  [[nodiscard]] Result<AttributeBinding> BindingFor(size_t column_index);

 private:
  Executor(gpu::Device* device, const db::Table* table);

  /// Fraction of the table a selection covers, for span tags.
  double Selectivity(uint64_t selected) const {
    return table_->num_rows() == 0
               ? 0.0
               : static_cast<double>(selected) /
                     static_cast<double>(table_->num_rows());
  }

  /// Texture holding the (a, b) column pair in channels 0/1.
  [[nodiscard]] Result<gpu::TextureId> PairTexture(size_t a, size_t b);

  /// Lowers CNF clauses / DNF terms into GPU predicates (the per-predicate
  /// lowering is identical for both normal forms).
  [[nodiscard]] Result<std::vector<GpuClause>> Lower(
      const std::vector<std::vector<predicate::SimplePredicate>>& groups);

  // --- Resilience (core/resilience.h) ------------------------------------

  /// Runs `gpu` under the resilience policy: arms the deadline, retries
  /// transient faults with backoff, counts device faults toward the
  /// breaker, and degrades to `cpu` (when non-null and fallback is
  /// allowed) after unrecoverable device faults or while the breaker is
  /// open. User errors and deadline/cancel statuses propagate untouched.
  template <typename T>
  [[nodiscard]] Result<T> RunResilient(const char* op_name,
                         const std::function<Result<T>()>& gpu,
                         const std::function<Result<T>()>& cpu);

  // GPU bodies of the public entry points (the pre-resilience behaviour;
  // public methods wrap these in RunResilient).
  [[nodiscard]] Result<uint64_t> CountGpu(const predicate::ExprPtr& where);
  [[nodiscard]] Result<std::vector<uint8_t>> SelectBitmapGpu(const predicate::ExprPtr& where);
  [[nodiscard]] Result<std::vector<uint32_t>> SelectRowIdsGpu(
      const predicate::ExprPtr& where);
  [[nodiscard]] Result<std::vector<std::pair<uint32_t, uint32_t>>> TopKGpu(
      std::string_view column, uint64_t k);
  [[nodiscard]] Result<double> AggregateGpu(AggregateKind kind, std::string_view column,
                              const predicate::ExprPtr& where);
  [[nodiscard]] Result<uint32_t> KthLargestGpu(std::string_view column, uint64_t k,
                                 const predicate::ExprPtr& where);
  [[nodiscard]] Result<std::vector<uint32_t>> OrderByRowIdsGpu(std::string_view column,
                                                 bool ascending);
  [[nodiscard]] Result<uint64_t> RangeCountGpu(std::string_view column, double low,
                                 double high);
  [[nodiscard]] Result<uint64_t> SemilinearCountGpu(
      const std::vector<std::pair<std::string, float>>& weighted_columns,
      gpu::CompareOp op, float b);
  [[nodiscard]] Result<std::vector<GroupByRow>> GroupByGpu(std::string_view key_column,
                                             std::string_view value_column,
                                             AggregateKind kind,
                                             uint64_t max_groups);
  [[nodiscard]] Result<std::vector<uint32_t>> QuantilesGpu(std::string_view column, int q);

  // CPU fallback tier (cpu/scan + cpu/quickselect + cpu/aggregate): exact
  // equivalents of the GPU operators for integer columns, used when the
  // device is faulting (DESIGN.md section 11 degradation ladder).
  [[nodiscard]] Result<std::vector<uint8_t>> CpuSelectionMask(const predicate::ExprPtr& where);
  [[nodiscard]] Result<uint64_t> CpuCount(const predicate::ExprPtr& where);
  [[nodiscard]] Result<std::vector<uint32_t>> CpuRowIds(const predicate::ExprPtr& where);
  [[nodiscard]] Result<double> CpuAggregate(AggregateKind kind, std::string_view column,
                              const predicate::ExprPtr& where);
  [[nodiscard]] Result<uint32_t> CpuKthLargest(std::string_view column, uint64_t k,
                                 const predicate::ExprPtr& where);
  [[nodiscard]] Result<uint64_t> CpuRangeCount(std::string_view column, double low,
                                 double high);

  gpu::Device* device_;
  const db::Table* table_;
  const db::TableStats* stats_ = nullptr;  ///< ANALYZE stats; not owned.
  PlanOptions plan_options_;
  std::string table_name_;      ///< catalog identity for plane-cache keys
  uint64_t table_version_ = 0;  ///< catalog version at SetTableIdentity time
  SelectionExecOptions last_exec_;
  std::vector<gpu::TextureId> column_textures_;  // -1 = not uploaded yet
  std::map<std::pair<size_t, size_t>, gpu::TextureId> pair_textures_;

  ResilienceOptions resilience_;
  CircuitBreaker breaker_{3};
};

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_EXECUTOR_H_
