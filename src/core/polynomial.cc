#include "src/core/polynomial.h"

#include <string>

#include "src/core/state_guard.h"
#include "src/gpu/fragment_program.h"

namespace gpudb {
namespace core {

Result<uint64_t> PolynomialSelect(gpu::Device* device, gpu::TextureId texture,
                                  const PolynomialQuery& query) {
  for (int c = 0; c < 4; ++c) {
    if (query.exponents[c] < 0 || query.exponents[c] > 8) {
      return Status::InvalidArgument(
          "polynomial exponents must be in [0, 8] (2004 fragment programs "
          "expand powers to straight-line multiplies); got " +
          std::to_string(query.exponents[c]));
    }
  }
  StateGuard guard(device);
  GPUDB_RETURN_NOT_OK(device->BindTexture(texture));
  const gpu::PolynomialProgram program(query.weights, query.exponents,
                                       query.op, query.b);
  device->UseProgram(&program);
  device->ClearStencil(0);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(false);
  device->SetStencilTest(true, gpu::CompareOp::kAlways, /*ref=*/1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kReplace);
  GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
  GPUDB_RETURN_NOT_OK(device->RenderTexturedQuad());
  GPUDB_ASSIGN_OR_RETURN(uint64_t count, device->EndOcclusionQuery());
  device->UseProgram(nullptr);
  return count;
}

}  // namespace core
}  // namespace gpudb
