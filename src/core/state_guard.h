#ifndef GPUDB_CORE_STATE_GUARD_H_
#define GPUDB_CORE_STATE_GUARD_H_

#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief RAII save/restore of the device render state and fragment program
/// around multi-pass algorithms, so core operations compose without leaking
/// test configuration into each other.
class StateGuard {
 public:
  explicit StateGuard(gpu::Device* device)
      : device_(device),
        saved_state_(device->state()),
        saved_program_(device->program()),
        saved_transform_(device->transform()),
        saved_window_space_(device->window_space_vertices()) {}

  StateGuard(const StateGuard&) = delete;
  StateGuard& operator=(const StateGuard&) = delete;

  ~StateGuard() {
    device_->state() = saved_state_;
    device_->UseProgram(saved_program_);
    if (saved_window_space_) {
      device_->ResetTransform();
    } else {
      device_->SetTransform(saved_transform_);
    }
  }

 private:
  gpu::Device* device_;
  gpu::RenderState saved_state_;
  const gpu::FragmentProgram* saved_program_;
  gpu::Mat4 saved_transform_;
  bool saved_window_space_;
};

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_STATE_GUARD_H_
