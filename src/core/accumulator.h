#ifndef GPUDB_CORE_ACCUMULATOR_H_
#define GPUDB_CORE_ACCUMULATOR_H_

#include <cstdint>
#include <optional>

#include "src/common/result.h"
#include "src/core/eval_cnf.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief Options for Accumulate.
struct AccumulatorOptions {
  /// Restrict the sum to records marked by a previous selection: "Attributes
  /// that are not selected fail the stencil test and thus make no
  /// contribution to the final sum" (Section 4.3.3).
  std::optional<StencilSelection> selection;

  /// When true (the default, matching the paper), the per-bit test uses the
  /// alpha test against TestBit's fractional alpha; when false, the fragment
  /// program KILLs failing fragments directly. The paper notes "it is
  /// possible to perform the comparison and reject fragments directly in the
  /// fragment program, but it is faster in practice to use the alpha test".
  /// Kept as an option for the ablation benchmark.
  bool use_alpha_test = true;
};

/// \brief Routine 4.6 (Accumulator): sums an integer attribute exactly by
/// counting, for each bit position i, how many values have bit i set
/// (occlusion query over the TestBit alpha-test pass) and accumulating
/// count * 2^i. Runs `bit_width` passes; works only on integer data,
/// as the paper states.
///
/// Returns the exact 64-bit sum.
[[nodiscard]] Result<uint64_t> Accumulate(gpu::Device* device, gpu::TextureId texture,
                            int channel, int bit_width,
                            const AccumulatorOptions& options = {});

/// \brief AVG = SUM / COUNT (Section 4.3.3). The count comes from the
/// selection if present, else the viewport record count.
[[nodiscard]] Result<double> Average(gpu::Device* device, gpu::TextureId texture,
                       int channel, int bit_width,
                       const AccumulatorOptions& options = {});

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_ACCUMULATOR_H_
