#include "src/core/selection.h"

#include <string>

namespace gpudb {
namespace core {

Result<StencilSelection> SelectAll(gpu::Device* device) {
  device->ClearStencil(1);
  StencilSelection sel;
  sel.valid_value = 1;
  sel.count = device->viewport_pixels();
  return sel;
}

Result<std::vector<uint8_t>> SelectionToBitmap(gpu::Device* device,
                                               const StencilSelection& sel,
                                               uint64_t num_records) {
  if (num_records > device->framebuffer().pixel_count()) {
    return Status::OutOfRange("num_records " + std::to_string(num_records) +
                              " exceeds framebuffer capacity");
  }
  GPUDB_ASSIGN_OR_RETURN(const std::vector<uint8_t> stencil,
                         device->ReadStencil());
  std::vector<uint8_t> bitmap(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    bitmap[i] = stencil[i] == sel.valid_value ? 1 : 0;
  }
  return bitmap;
}

Result<std::vector<uint32_t>> SelectionToRowIds(gpu::Device* device,
                                                const StencilSelection& sel,
                                                uint64_t num_records) {
  GPUDB_ASSIGN_OR_RETURN(std::vector<uint8_t> bitmap,
                         SelectionToBitmap(device, sel, num_records));
  std::vector<uint32_t> rows;
  rows.reserve(sel.count);
  for (uint64_t i = 0; i < bitmap.size(); ++i) {
    if (bitmap[i] != 0) rows.push_back(static_cast<uint32_t>(i));
  }
  return rows;
}

}  // namespace core
}  // namespace gpudb
