#ifndef GPUDB_CORE_STREAM_H_
#define GPUDB_CORE_STREAM_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/core/compare.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief Sliding-window monitor over a stream of integer records -- the
/// "continuous queries over streams using GPUs" the paper names as future
/// work (Section 7), built from its own primitives.
///
/// The window is a GPU-resident ring texture of the most recent `capacity`
/// values. Each Push overwrites the oldest slots with a partial texture
/// update (glTexSubImage2D), so only new records cross the bus; ring order
/// is irrelevant to the supported queries (COUNT / SUM / order statistics
/// are permutation-invariant).
class StreamWindow {
 public:
  /// Creates a window of up to `capacity` records whose values fit in
  /// `bit_width` bits. The capacity must fit the device framebuffer.
  [[nodiscard]] static Result<StreamWindow> Make(gpu::Device* device, uint64_t capacity,
                                   int bit_width);

  /// Appends a batch, evicting the oldest records once full. Values must fit
  /// the declared bit width.
  [[nodiscard]] Status Push(const std::vector<uint32_t>& values);

  /// Records currently in the window (<= capacity).
  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }

  /// COUNT(*) WHERE value op constant over the current window.
  [[nodiscard]] Result<uint64_t> Count(gpu::CompareOp op, double constant);

  /// Exact SUM over the current window (Routine 4.6).
  [[nodiscard]] Result<uint64_t> Sum();

  /// k-th largest over the current window (Routine 4.5).
  [[nodiscard]] Result<uint32_t> KthLargest(uint64_t k);

  /// Median over the current window.
  [[nodiscard]] Result<uint32_t> Median();

 private:
  StreamWindow(gpu::Device* device, gpu::TextureId texture, uint64_t capacity,
               int bit_width);

  /// Points the device viewport at the live window region.
  [[nodiscard]] Status Activate();

  gpu::Device* device_;
  AttributeBinding binding_;
  uint64_t capacity_;
  int bit_width_;
  uint64_t head_ = 0;  ///< next ring slot to overwrite
  uint64_t size_ = 0;  ///< live records
};

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_STREAM_H_
