#include "src/predicate/expr.h"

#include <utility>

namespace gpudb {
namespace predicate {

bool SimplePredicate::EvaluateRow(const db::Table& table, size_t row) const {
  const float lhs = table.column(attr).value(row);
  const float rhs =
      rhs_is_attr ? table.column(rhs_attr).value(row) : constant;
  return gpu::EvalCompare(op, lhs, rhs);
}

std::string SimplePredicate::ToString(const db::Table* table) const {
  auto attr_name = [&](size_t i) {
    if (table != nullptr && i < table->num_columns()) {
      return table->column(i).name();
    }
    return "a" + std::to_string(i);
  };
  std::string out = attr_name(attr);
  out += " ";
  out += gpu::ToString(op);
  out += " ";
  if (rhs_is_attr) {
    out += attr_name(rhs_attr);
  } else {
    out += std::to_string(constant);
  }
  return out;
}

ExprPtr Expr::Pred(size_t attr, gpu::CompareOp op, float constant) {
  SimplePredicate p;
  p.attr = attr;
  p.op = op;
  p.rhs_is_attr = false;
  p.constant = constant;
  return ExprPtr(new Expr(Kind::kPredicate, p, {}));
}

ExprPtr Expr::PredAttr(size_t attr, gpu::CompareOp op, size_t rhs_attr) {
  SimplePredicate p;
  p.attr = attr;
  p.op = op;
  p.rhs_is_attr = true;
  p.rhs_attr = rhs_attr;
  return ExprPtr(new Expr(Kind::kPredicate, p, {}));
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  return ExprPtr(
      new Expr(Kind::kAnd, SimplePredicate{}, {std::move(lhs), std::move(rhs)}));
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  return ExprPtr(
      new Expr(Kind::kOr, SimplePredicate{}, {std::move(lhs), std::move(rhs)}));
}

ExprPtr Expr::Not(ExprPtr child) {
  return ExprPtr(new Expr(Kind::kNot, SimplePredicate{}, {std::move(child)}));
}

ExprPtr Expr::Between(size_t attr, float low, float high) {
  return And(Pred(attr, gpu::CompareOp::kGreaterEqual, low),
             Pred(attr, gpu::CompareOp::kLessEqual, high));
}

bool Expr::EvaluateRow(const db::Table& table, size_t row) const {
  switch (kind_) {
    case Kind::kPredicate:
      return pred_.EvaluateRow(table, row);
    case Kind::kAnd:
      return children_[0]->EvaluateRow(table, row) &&
             children_[1]->EvaluateRow(table, row);
    case Kind::kOr:
      return children_[0]->EvaluateRow(table, row) ||
             children_[1]->EvaluateRow(table, row);
    case Kind::kNot:
      return !children_[0]->EvaluateRow(table, row);
  }
  return false;
}

Status Expr::Validate(const db::Table& table) const {
  switch (kind_) {
    case Kind::kPredicate: {
      if (pred_.attr >= table.num_columns()) {
        return Status::OutOfRange("predicate references column " +
                                  std::to_string(pred_.attr) +
                                  " but table has " +
                                  std::to_string(table.num_columns()));
      }
      if (pred_.rhs_is_attr && pred_.rhs_attr >= table.num_columns()) {
        return Status::OutOfRange("predicate references column " +
                                  std::to_string(pred_.rhs_attr) +
                                  " but table has " +
                                  std::to_string(table.num_columns()));
      }
      return Status::OK();
    }
    case Kind::kAnd:
    case Kind::kOr:
      GPUDB_RETURN_NOT_OK(children_[0]->Validate(table));
      return children_[1]->Validate(table);
    case Kind::kNot:
      return children_[0]->Validate(table);
  }
  return Status::Internal("corrupt expression node");
}

std::string Expr::ToString(const db::Table* table) const {
  switch (kind_) {
    case Kind::kPredicate:
      return pred_.ToString(table);
    case Kind::kAnd:
      return "(" + children_[0]->ToString(table) + " AND " +
             children_[1]->ToString(table) + ")";
    case Kind::kOr:
      return "(" + children_[0]->ToString(table) + " OR " +
             children_[1]->ToString(table) + ")";
    case Kind::kNot:
      return "NOT " + children_[0]->ToString(table);
  }
  return "?";
}

}  // namespace predicate
}  // namespace gpudb
