#ifndef GPUDB_PREDICATE_EXPR_H_
#define GPUDB_PREDICATE_EXPR_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/db/table.h"
#include "src/gpu/types.h"

namespace gpudb {
namespace predicate {

/// \brief A simple predicate of the SQL WHERE grammar the paper targets
/// (Section 4): `a_i op a_j` or `a_i op constant`, with op one of
/// =, !=, >, >=, <, <=.
struct SimplePredicate {
  size_t attr = 0;            ///< Left-hand column index.
  gpu::CompareOp op = gpu::CompareOp::kAlways;
  bool rhs_is_attr = false;   ///< True for attribute-attribute comparison.
  size_t rhs_attr = 0;        ///< Right-hand column index if rhs_is_attr.
  float constant = 0.0f;      ///< Right-hand constant otherwise.

  /// Reference (CPU) evaluation against a table row.
  bool EvaluateRow(const db::Table& table, size_t row) const;

  std::string ToString(const db::Table* table = nullptr) const;
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief Immutable boolean expression tree over simple predicates, using
/// AND/OR/NOT (the boolean combinations of paper Section 4.2).
class Expr {
 public:
  enum class Kind { kPredicate, kAnd, kOr, kNot };

  // Factory functions; expressions are shared immutable nodes.
  static ExprPtr Pred(size_t attr, gpu::CompareOp op, float constant);
  static ExprPtr PredAttr(size_t attr, gpu::CompareOp op, size_t rhs_attr);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr child);
  /// `low <= attr AND attr <= high`, the paper's range query.
  static ExprPtr Between(size_t attr, float low, float high);

  Kind kind() const { return kind_; }
  const SimplePredicate& pred() const { return pred_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Reference (CPU) evaluation of the whole tree against a table row; used
  /// by tests to cross-check every GPU result.
  bool EvaluateRow(const db::Table& table, size_t row) const;

  /// Checks that every referenced column index exists and that the
  /// comparison types make sense for the table.
  Status Validate(const db::Table& table) const;

  std::string ToString(const db::Table* table = nullptr) const;

 private:
  Expr(Kind kind, SimplePredicate pred, std::vector<ExprPtr> children)
      : kind_(kind), pred_(pred), children_(std::move(children)) {}

  Kind kind_;
  SimplePredicate pred_;          // valid iff kind_ == kPredicate
  std::vector<ExprPtr> children_; // 1 for NOT, 2 for AND/OR
};

}  // namespace predicate
}  // namespace gpudb

#endif  // GPUDB_PREDICATE_EXPR_H_
