#ifndef GPUDB_PREDICATE_CNF_H_
#define GPUDB_PREDICATE_CNF_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/db/table.h"
#include "src/predicate/expr.h"

namespace gpudb {
namespace predicate {

/// \brief A boolean combination in conjunctive normal form, the shape
/// EvalCNF (Routine 4.3) consumes: A_1 AND A_2 AND ... AND A_k where each
/// A_i = B_i1 OR B_i2 OR ... OR B_im and every B_ij is a SimplePredicate
/// with no NOT operator.
struct Cnf {
  std::vector<std::vector<SimplePredicate>> clauses;

  /// Reference evaluation for cross-checking the GPU path.
  bool EvaluateRow(const db::Table& table, size_t row) const;

  /// Total simple-predicate count (= number of Compare passes EvalCNF runs).
  size_t predicate_count() const;

  std::string ToString(const db::Table* table = nullptr) const;
};

/// Safety valve: CNF distribution is worst-case exponential; conversions
/// that would exceed this many clauses fail with ResourceExhausted.
inline constexpr size_t kMaxCnfClauses = 4096;

/// \brief A boolean combination in disjunctive normal form: T_1 OR ... OR
/// T_k where each term T_i is a conjunction of NOT-free simple predicates.
/// The paper notes EvalCNF "can easily [be] modified for handling a boolean
/// expression represented as a DNF" (Section 4.2); core::EvalDnf is that
/// modification, and queries that are naturally disjunctions of conjunctions
/// avoid the exponential CNF distribution entirely.
struct Dnf {
  std::vector<std::vector<SimplePredicate>> terms;

  /// Reference evaluation for cross-checking the GPU path.
  bool EvaluateRow(const db::Table& table, size_t row) const;

  /// Total simple-predicate count.
  size_t predicate_count() const;

  std::string ToString(const db::Table* table = nullptr) const;
};

/// \brief Converts an arbitrary AND/OR/NOT expression into DNF (NOT
/// elimination followed by distributing AND over OR). Subject to the same
/// kMaxCnfClauses blow-up guard, applied to terms.
Result<Dnf> ToDnf(const ExprPtr& expr);

/// \brief Converts an arbitrary AND/OR/NOT expression into CNF.
///
/// NOT operators are eliminated first by pushing them to the leaves
/// (De Morgan) and inverting the leaf comparisons, exactly as the paper
/// prescribes: "If a simple predicate in this expression has a NOT operator,
/// we can invert the comparison operation and eliminate the NOT operator"
/// (Section 4.2). ORs are then distributed over ANDs.
Result<Cnf> ToCnf(const ExprPtr& expr);

}  // namespace predicate
}  // namespace gpudb

#endif  // GPUDB_PREDICATE_CNF_H_
