#include "src/predicate/cnf.h"

#include <utility>

namespace gpudb {
namespace predicate {

namespace {

/// Rewrites the tree into one with NOT only applied away at the leaves.
/// `negated` tracks whether an odd number of NOTs wraps the current node.
ExprPtr EliminateNot(const ExprPtr& node, bool negated) {
  switch (node->kind()) {
    case Expr::Kind::kPredicate: {
      if (!negated) return node;
      const SimplePredicate& p = node->pred();
      const gpu::CompareOp inv = gpu::Invert(p.op);
      return p.rhs_is_attr ? Expr::PredAttr(p.attr, inv, p.rhs_attr)
                           : Expr::Pred(p.attr, inv, p.constant);
    }
    case Expr::Kind::kNot:
      return EliminateNot(node->children()[0], !negated);
    case Expr::Kind::kAnd: {
      ExprPtr l = EliminateNot(node->children()[0], negated);
      ExprPtr r = EliminateNot(node->children()[1], negated);
      // De Morgan: NOT (a AND b) == (NOT a) OR (NOT b).
      return negated ? Expr::Or(std::move(l), std::move(r))
                     : Expr::And(std::move(l), std::move(r));
    }
    case Expr::Kind::kOr: {
      ExprPtr l = EliminateNot(node->children()[0], negated);
      ExprPtr r = EliminateNot(node->children()[1], negated);
      return negated ? Expr::And(std::move(l), std::move(r))
                     : Expr::Or(std::move(l), std::move(r));
    }
  }
  return node;
}

/// Converts a NOT-free tree into clause lists, distributing OR over AND.
Status BuildCnf(const ExprPtr& node,
                std::vector<std::vector<SimplePredicate>>* out) {
  switch (node->kind()) {
    case Expr::Kind::kPredicate:
      out->push_back({node->pred()});
      return Status::OK();
    case Expr::Kind::kAnd: {
      GPUDB_RETURN_NOT_OK(BuildCnf(node->children()[0], out));
      GPUDB_RETURN_NOT_OK(BuildCnf(node->children()[1], out));
      if (out->size() > kMaxCnfClauses) {
        return Status::ResourceExhausted("CNF conversion exceeded " +
                                         std::to_string(kMaxCnfClauses) +
                                         " clauses");
      }
      return Status::OK();
    }
    case Expr::Kind::kOr: {
      std::vector<std::vector<SimplePredicate>> left, right;
      GPUDB_RETURN_NOT_OK(BuildCnf(node->children()[0], &left));
      GPUDB_RETURN_NOT_OK(BuildCnf(node->children()[1], &right));
      // (L1 AND ... Lm) OR (R1 AND ... Rn)
      //   == AND over all i,j of (Li OR Rj)
      if (left.size() * right.size() > kMaxCnfClauses) {
        return Status::ResourceExhausted(
            "CNF distribution would produce " +
            std::to_string(left.size() * right.size()) + " clauses");
      }
      for (const auto& l : left) {
        for (const auto& r : right) {
          std::vector<SimplePredicate> clause = l;
          clause.insert(clause.end(), r.begin(), r.end());
          out->push_back(std::move(clause));
        }
      }
      if (out->size() > kMaxCnfClauses) {
        return Status::ResourceExhausted("CNF conversion exceeded " +
                                         std::to_string(kMaxCnfClauses) +
                                         " clauses");
      }
      return Status::OK();
    }
    case Expr::Kind::kNot:
      return Status::Internal("NOT node survived EliminateNot");
  }
  return Status::Internal("corrupt expression node");
}

/// Converts a NOT-free tree into DNF term lists, distributing AND over OR.
/// Dual of BuildCnf.
Status BuildDnf(const ExprPtr& node,
                std::vector<std::vector<SimplePredicate>>* out) {
  switch (node->kind()) {
    case Expr::Kind::kPredicate:
      out->push_back({node->pred()});
      return Status::OK();
    case Expr::Kind::kOr: {
      GPUDB_RETURN_NOT_OK(BuildDnf(node->children()[0], out));
      GPUDB_RETURN_NOT_OK(BuildDnf(node->children()[1], out));
      if (out->size() > kMaxCnfClauses) {
        return Status::ResourceExhausted("DNF conversion exceeded " +
                                         std::to_string(kMaxCnfClauses) +
                                         " terms");
      }
      return Status::OK();
    }
    case Expr::Kind::kAnd: {
      std::vector<std::vector<SimplePredicate>> left, right;
      GPUDB_RETURN_NOT_OK(BuildDnf(node->children()[0], &left));
      GPUDB_RETURN_NOT_OK(BuildDnf(node->children()[1], &right));
      // (L1 OR ... Lm) AND (R1 OR ... Rn) == OR over all i,j of (Li AND Rj).
      if (left.size() * right.size() > kMaxCnfClauses) {
        return Status::ResourceExhausted(
            "DNF distribution would produce " +
            std::to_string(left.size() * right.size()) + " terms");
      }
      for (const auto& l : left) {
        for (const auto& r : right) {
          std::vector<SimplePredicate> term = l;
          term.insert(term.end(), r.begin(), r.end());
          out->push_back(std::move(term));
        }
      }
      if (out->size() > kMaxCnfClauses) {
        return Status::ResourceExhausted("DNF conversion exceeded " +
                                         std::to_string(kMaxCnfClauses) +
                                         " terms");
      }
      return Status::OK();
    }
    case Expr::Kind::kNot:
      return Status::Internal("NOT node survived EliminateNot");
  }
  return Status::Internal("corrupt expression node");
}

}  // namespace

bool Dnf::EvaluateRow(const db::Table& table, size_t row) const {
  for (const auto& term : terms) {
    bool all = true;
    for (const SimplePredicate& p : term) {
      if (!p.EvaluateRow(table, row)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

size_t Dnf::predicate_count() const {
  size_t n = 0;
  for (const auto& term : terms) n += term.size();
  return n;
}

std::string Dnf::ToString(const db::Table* table) const {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += " OR ";
    out += "(";
    for (size_t j = 0; j < terms[i].size(); ++j) {
      if (j > 0) out += " AND ";
      out += terms[i][j].ToString(table);
    }
    out += ")";
  }
  return out;
}

Result<Dnf> ToDnf(const ExprPtr& expr) {
  if (expr == nullptr) {
    return Status::InvalidArgument("null expression");
  }
  const ExprPtr not_free = EliminateNot(expr, /*negated=*/false);
  Dnf dnf;
  GPUDB_RETURN_NOT_OK(BuildDnf(not_free, &dnf.terms));
  return dnf;
}

bool Cnf::EvaluateRow(const db::Table& table, size_t row) const {
  for (const auto& clause : clauses) {
    bool any = false;
    for (const SimplePredicate& p : clause) {
      if (p.EvaluateRow(table, row)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

size_t Cnf::predicate_count() const {
  size_t n = 0;
  for (const auto& clause : clauses) n += clause.size();
  return n;
}

std::string Cnf::ToString(const db::Table* table) const {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " AND ";
    out += "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out += " OR ";
      out += clauses[i][j].ToString(table);
    }
    out += ")";
  }
  return out;
}

Result<Cnf> ToCnf(const ExprPtr& expr) {
  if (expr == nullptr) {
    return Status::InvalidArgument("null expression");
  }
  const ExprPtr not_free = EliminateNot(expr, /*negated=*/false);
  Cnf cnf;
  GPUDB_RETURN_NOT_OK(BuildCnf(not_free, &cnf.clauses));
  return cnf;
}

}  // namespace predicate
}  // namespace gpudb
