#include "src/db/table.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace gpudb {
namespace db {

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name() + "' has " +
        std::to_string(column.size()) + " rows; table has " +
        std::to_string(num_rows()));
  }
  for (const Column& existing : columns_) {
    if (existing.name() == column.name()) {
      return Status::InvalidArgument("duplicate column name '" +
                                     column.name() + "'");
    }
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<const Column*> Table::ColumnByName(std::string_view name) const {
  for (const Column& c : columns_) {
    if (c.name() == name) return &c;
  }
  return Status::InvalidArgument("no column named '" + std::string(name) +
                                 "'");
}

Result<size_t> Table::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return Status::InvalidArgument("no column named '" + std::string(name) +
                                 "'");
}

Result<gpu::Texture> Table::ToTexture(
    const std::vector<size_t>& column_indices, uint32_t width) const {
  if (column_indices.empty() ||
      column_indices.size() > static_cast<size_t>(gpu::kMaxChannels)) {
    return Status::InvalidArgument(
        "a texture packs 1-4 columns (paper Section 4.1.2: four channels per "
        "texture); got " +
        std::to_string(column_indices.size()));
  }
  std::vector<const std::vector<float>*> channels;
  channels.reserve(column_indices.size());
  for (size_t idx : column_indices) {
    if (idx >= columns_.size()) {
      return Status::OutOfRange("column index " + std::to_string(idx) +
                                " out of range");
    }
    channels.push_back(&columns_[idx].values());
  }
  return gpu::Texture::FromColumns(channels, width);
}

Result<gpu::Texture> Table::ColumnTexture(size_t column_index,
                                          uint32_t width) const {
  return ToTexture({column_index}, width);
}

Result<Table> Table::GatherRows(const std::vector<uint32_t>& row_ids) const {
  if (row_ids.empty()) {
    return Status::InvalidArgument(
        "GatherRows with no rows (tables cannot be empty)");
  }
  for (uint32_t row : row_ids) {
    if (row >= num_rows()) {
      return Status::OutOfRange("row id " + std::to_string(row) +
                                " out of range");
    }
  }
  Table out;
  for (const Column& col : columns_) {
    if (col.has_dictionary()) {
      std::vector<std::string> values(row_ids.size());
      for (size_t i = 0; i < row_ids.size(); ++i) {
        values[i] = col.dict_value(row_ids[i]);
      }
      GPUDB_ASSIGN_OR_RETURN(Column gathered,
                             Column::MakeDictionary(col.name(), values));
      GPUDB_RETURN_NOT_OK(out.AddColumn(std::move(gathered)));
    } else if (col.type() == ColumnType::kInt24) {
      std::vector<uint32_t> values(row_ids.size());
      for (size_t i = 0; i < row_ids.size(); ++i) {
        values[i] = col.int_value(row_ids[i]);
      }
      GPUDB_ASSIGN_OR_RETURN(Column gathered,
                             Column::MakeInt24(col.name(), values));
      GPUDB_RETURN_NOT_OK(out.AddColumn(std::move(gathered)));
    } else {
      std::vector<float> values(row_ids.size());
      for (size_t i = 0; i < row_ids.size(); ++i) {
        values[i] = col.value(row_ids[i]);
      }
      GPUDB_ASSIGN_OR_RETURN(Column gathered,
                             Column::MakeFloat(col.name(), std::move(values)));
      GPUDB_RETURN_NOT_OK(out.AddColumn(std::move(gathered)));
    }
  }
  return out;
}

std::string Table::FormatRows(const std::vector<uint32_t>& row_ids,
                              size_t max_rows) const {
  const size_t shown = std::min(max_rows, row_ids.size());
  // Render every cell, then size columns to their widest entry.
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header = {"row"};
  for (size_t c = 0; c < num_columns(); ++c) {
    header.push_back(columns_[c].name());
  }
  cells.push_back(header);
  char buf[64];
  for (size_t i = 0; i < shown; ++i) {
    const uint32_t row = row_ids[i];
    std::vector<std::string> line;
    line.push_back(std::to_string(row));
    for (size_t c = 0; c < num_columns(); ++c) {
      if (row >= num_rows()) {
        line.push_back("?");
        continue;
      }
      if (columns_[c].has_dictionary()) {
        line.push_back(columns_[c].dict_value(row));
        continue;
      }
      if (columns_[c].type() == ColumnType::kInt24) {
        std::snprintf(buf, sizeof(buf), "%u", columns_[c].int_value(row));
      } else {
        std::snprintf(buf, sizeof(buf), "%.6g", columns_[c].value(row));
      }
      line.push_back(buf);
    }
    cells.push_back(std::move(line));
  }
  std::vector<size_t> widths(cells[0].size(), 0);
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      widths[c] = std::max(widths[c], line[c].size());
    }
  }
  std::string out;
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      if (c > 0) out += "  ";
      out.append(widths[c] - line[c].size(), ' ');
      out += line[c];
    }
    out += "\n";
  }
  if (row_ids.size() > shown) {
    out += "... (" + std::to_string(row_ids.size() - shown) + " more)\n";
  }
  return out;
}

}  // namespace db
}  // namespace gpudb
