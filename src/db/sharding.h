#ifndef GPUDB_DB_SHARDING_H_
#define GPUDB_DB_SHARDING_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/db/table.h"

namespace gpudb {
namespace db {

/// \brief Placement of one shard across a gpu::DevicePool (DESIGN.md §15).
///
/// R=2 replication: shard i's primary is device `i mod D` and its replica
/// the next device in ring order, so losing any single device leaves every
/// shard with exactly one surviving placement. With a one-device pool the
/// replica collapses onto the primary (R=1) and failover goes straight to
/// the CPU tier.
struct ShardPlacement {
  int primary = 0;
  int replica = 0;

  bool replicated() const { return replica != primary; }
};

/// \brief One contiguous row range of a sharded table, materialized.
struct Shard {
  uint32_t row_begin = 0;  ///< Global row id of the shard's first row.
  Table table;             ///< The slice, same schema as the parent.
  ShardPlacement placement;
};

/// \brief Range-sharding of a registered table across a device pool.
///
/// Rows are split into `num_shards` contiguous ranges (shard i covers
/// [i*n/S, (i+1)*n/S)), so a per-shard row id plus the shard's `row_begin`
/// is the global row id and concatenating per-shard selections in shard
/// order yields exactly the single-device result.
///
/// Only all-kInt24 tables are shardable: integer columns use the
/// data-independent exact depth encoding (core/depth_encoding.h), so every
/// shard quantizes predicates identically to the whole table and per-shard
/// GPU answers recombine bit-exactly. A kFloat32 column's encoding is
/// derived from its min/max, which differ per shard -- Make refuses such
/// tables and the caller keeps them on the single-device path.
class ShardedTable {
 public:
  /// Slices `table` into `num_shards` ranges placed across `num_devices`
  /// devices. `table` is copied shard by shard (GatherRows), so it does not
  /// need to outlive the result. Shards never outnumber rows: the shard
  /// count is clamped to the row count.
  [[nodiscard]] static Result<ShardedTable> Make(const Table& table,
                                                 int num_shards,
                                                 int num_devices);

  size_t num_shards() const { return shards_.size(); }
  const Shard& shard(size_t i) const { return shards_[i]; }
  uint64_t num_rows() const { return num_rows_; }

 private:
  ShardedTable() = default;

  std::vector<Shard> shards_;
  uint64_t num_rows_ = 0;
};

}  // namespace db
}  // namespace gpudb

#endif  // GPUDB_DB_SHARDING_H_
