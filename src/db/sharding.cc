#include "src/db/sharding.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/db/column.h"

namespace gpudb {
namespace db {

Result<ShardedTable> ShardedTable::Make(const Table& table, int num_shards,
                                        int num_devices) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot shard an empty table");
  }
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (num_devices < 1) {
    return Status::InvalidArgument("num_devices must be >= 1");
  }
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).type() != ColumnType::kInt24) {
      return Status::InvalidArgument(
          "cannot shard table: column '" + table.column(c).name() +
          "' is not kInt24 (float columns quantize per shard min/max, so "
          "per-shard answers would not be bit-exact; see db/sharding.h)");
    }
  }
  const uint64_t n = table.num_rows();
  const uint64_t shards =
      std::min<uint64_t>(static_cast<uint64_t>(num_shards), n);
  ShardedTable sharded;
  sharded.num_rows_ = n;
  sharded.shards_.reserve(shards);
  for (uint64_t i = 0; i < shards; ++i) {
    const uint64_t begin = i * n / shards;
    const uint64_t end = (i + 1) * n / shards;
    std::vector<uint32_t> rows(end - begin);
    std::iota(rows.begin(), rows.end(), static_cast<uint32_t>(begin));
    GPUDB_ASSIGN_OR_RETURN(Table slice, table.GatherRows(rows));
    Shard shard;
    shard.row_begin = static_cast<uint32_t>(begin);
    shard.table = std::move(slice);
    shard.placement.primary = static_cast<int>(i % num_devices);
    shard.placement.replica =
        num_devices > 1 ? (shard.placement.primary + 1) % num_devices
                        : shard.placement.primary;
    sharded.shards_.push_back(std::move(shard));
  }
  return sharded;
}

}  // namespace db
}  // namespace gpudb
