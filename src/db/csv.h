#ifndef GPUDB_DB_CSV_H_
#define GPUDB_DB_CSV_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/db/table.h"

namespace gpudb {
namespace db {

/// \brief Loads a table from numeric CSV text.
///
/// Format: the first row holds column names; every following row holds one
/// numeric value per column. Columns whose values are all integral and fit
/// the exact 24-bit texture range become kInt24 (eligible for the depth
/// buffer and bit-loop algorithms); any other column becomes kFloat32.
/// Quoting is not supported -- this is a loader for numeric relational
/// data, not a general CSV parser.
Result<Table> ReadCsv(std::string_view text);

/// Reads and parses a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path);

/// Serializes a table back to CSV (header + one row per record). Int24
/// columns print as integers, float columns with full precision.
std::string WriteCsv(const Table& table);

/// Writes the table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace db
}  // namespace gpudb

#endif  // GPUDB_DB_CSV_H_
