#ifndef GPUDB_DB_STATS_H_
#define GPUDB_DB_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/gpu/types.h"

namespace gpudb {
namespace db {

/// \brief Per-column statistics collected by `ANALYZE <table>`.
///
/// `fences` is an equi-depth histogram: fences[0] is the column minimum and
/// fences[i] (i >= 1) the value at rank ceil(i * n / buckets), so each of
/// the `buckets()` spans [fences[i], fences[i+1]] holds ~n/buckets rows.
/// Integer columns collect fences on the GPU via the b_max-pass quantile
/// binary search (core/histogram, Routine 4.5 machinery); float columns use
/// a CPU sort. Selectivity answers interpolate within a span, the classic
/// uniform-within-bucket assumption.
struct ColumnStats {
  std::string name;
  uint64_t row_count = 0;
  double min = 0.0;
  double max = 0.0;
  uint64_t distinct = 0;         ///< Exact distinct-value count.
  std::vector<double> fences;    ///< buckets()+1 equi-depth boundaries.

  int buckets() const {
    return fences.size() < 2 ? 0 : static_cast<int>(fences.size()) - 1;
  }

  /// Estimated fraction of values <= v, in [0,1].
  double CumulativeFraction(double v) const;

  /// Estimated selectivity of `column op value`. Equality uses the 1/distinct
  /// uniform assumption; inequalities use the histogram.
  double SelectivityCompare(gpu::CompareOp op, double value) const;

  /// Estimated selectivity of `low <= column <= high`.
  double SelectivityBetween(double low, double high) const;
};

/// \brief Statistics for one table, stored in the Catalog after ANALYZE and
/// consumed by the Planner/Executor for estimated-vs-actual row reporting.
/// `columns` is parallel to the table's column order.
struct TableStats {
  std::string table_name;
  uint64_t row_count = 0;
  int histogram_buckets = 0;
  std::vector<ColumnStats> columns;

  bool analyzed() const { return !columns.empty(); }

  /// Stats of a named column; nullptr when absent.
  const ColumnStats* Find(std::string_view column) const;
};

}  // namespace db
}  // namespace gpudb

#endif  // GPUDB_DB_STATS_H_
