#ifndef GPUDB_DB_BINARY_IO_H_
#define GPUDB_DB_BINARY_IO_H_

#include <string>

#include "src/common/result.h"
#include "src/db/table.h"

namespace gpudb {
namespace db {

/// \brief Columnar binary table format ("GPDB"), for fast save/load of
/// generated workloads without CSV parsing overhead.
///
/// Layout (all integers little-endian):
///   magic "GPDB" | u32 version | u32 num_columns | u64 num_rows
///   per column: u32 name_length | name bytes | u8 type (0=Int24, 1=Float32)
///               | num_rows raw float32 values
Result<Table> ReadBinary(const std::string& path);

Status WriteBinary(const Table& table, const std::string& path);

}  // namespace db
}  // namespace gpudb

#endif  // GPUDB_DB_BINARY_IO_H_
