#ifndef GPUDB_DB_DATAGEN_H_
#define GPUDB_DB_DATAGEN_H_

#include <cstddef>
#include <cstdint>

#include "src/common/result.h"
#include "src/db/table.h"

namespace gpudb {
namespace db {

/// \brief Synthetic stand-ins for the paper's two benchmark databases
/// (Section 5.1). The originals (a TCP/IP traffic trace from a local/wide
/// area network, and a census monthly-income extract) are not available;
/// these generators reproduce the properties the experiments actually depend
/// on -- cardinality, per-attribute bit width, variance, and value skew --
/// as documented in DESIGN.md section 2.

/// \brief Generates the TCP/IP monitoring table: `count` records with the
/// paper's four attributes (data_count, data_loss, flow_rate,
/// retransmissions).
///
/// `data_count` matches the paper's description of the attribute used in the
/// KthLargest experiments: "This attribute requires 19 bits to represent the
/// largest data value and has a high variance" (Section 5.9). We draw it
/// from a lognormal distribution clipped to [0, 2^19) whose maximum reaches
/// 19 bits. The other attributes are plausible network-monitoring marginals
/// (loss and retransmissions are small skewed counts, flow_rate a broad
/// positive distribution), each within 24 bits.
Result<Table> MakeTcpIpTable(size_t count, uint64_t seed = 20040613);

/// \brief Generates the census table: `count` records (the paper uses 360K)
/// with four attributes (monthly_income, age, weeks_worked, household_size).
/// Income is lognormal (heavily right-skewed, as in CPS data), the others
/// small integers.
Result<Table> MakeCensusTable(size_t count, uint64_t seed = 19940301);

/// \brief Uniform integer column in [0, 2^bits), for property tests and
/// ablations.
Result<Table> MakeUniformTable(size_t count, int bits, int num_columns = 1,
                               uint64_t seed = 42);

/// \brief Zipf-distributed integer column over the domain [0, domain):
/// value v drawn with probability proportional to 1/(v+1)^theta. Heavy skew
/// stresses the duplicate-handling of the order-statistic and histogram
/// algorithms.
Result<Table> MakeZipfTable(size_t count, uint32_t domain, double theta = 1.0,
                            uint64_t seed = 7);

}  // namespace db
}  // namespace gpudb

#endif  // GPUDB_DB_DATAGEN_H_
