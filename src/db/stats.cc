#include "src/db/stats.h"

#include <algorithm>
#include <cmath>

namespace gpudb {
namespace db {

double ColumnStats::CumulativeFraction(double v) const {
  if (row_count == 0) return 0.0;
  if (buckets() == 0) {
    // No histogram: assume uniform over [min, max].
    if (max <= min) return v >= min ? 1.0 : 0.0;
    return std::clamp((v - min) / (max - min), 0.0, 1.0);
  }
  if (v < fences.front()) return 0.0;
  if (v >= fences.back()) return 1.0;
  // Last fence index i with fences[i] <= v; interpolate within the span
  // [fences[i], fences[i+1]), which holds 1/buckets of the rows.
  const auto it = std::upper_bound(fences.begin(), fences.end(), v);
  const auto i = static_cast<size_t>(it - fences.begin()) - 1;
  const double per_bucket = 1.0 / static_cast<double>(buckets());
  const double lo = fences[i];
  const double hi = fences[i + 1];
  const double within = hi > lo ? (v - lo) / (hi - lo) : 1.0;
  return std::clamp((static_cast<double>(i) + within) * per_bucket, 0.0, 1.0);
}

double ColumnStats::SelectivityCompare(gpu::CompareOp op, double value) const {
  if (row_count == 0) return 0.0;
  const bool in_range = value >= min && value <= max;
  // Uniform-frequency assumption: each distinct value covers 1/distinct of
  // the rows. Degenerate stats (distinct 0) fall back to one row.
  const double eq =
      in_range ? std::min(1.0, 1.0 / static_cast<double>(std::max<uint64_t>(
                                        distinct, 1)))
               : 0.0;
  switch (op) {
    case gpu::CompareOp::kNever:
      return 0.0;
    case gpu::CompareOp::kAlways:
      return 1.0;
    case gpu::CompareOp::kEqual:
      return eq;
    case gpu::CompareOp::kNotEqual:
      return 1.0 - eq;
    case gpu::CompareOp::kLessEqual:
      return CumulativeFraction(value);
    case gpu::CompareOp::kLess:
      return std::max(0.0, CumulativeFraction(value) - eq);
    case gpu::CompareOp::kGreater:
      return 1.0 - CumulativeFraction(value);
    case gpu::CompareOp::kGreaterEqual:
      return std::min(1.0, 1.0 - CumulativeFraction(value) + eq);
  }
  return 1.0;
}

double ColumnStats::SelectivityBetween(double low, double high) const {
  if (high < low) return 0.0;
  return std::clamp(
      std::max(0.0, CumulativeFraction(high) - CumulativeFraction(low)) +
          SelectivityCompare(gpu::CompareOp::kEqual, low),
      0.0, 1.0);
}

const ColumnStats* TableStats::Find(std::string_view column) const {
  for (const ColumnStats& c : columns) {
    if (c.name == column) return &c;
  }
  return nullptr;
}

}  // namespace db
}  // namespace gpudb
