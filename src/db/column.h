#ifndef GPUDB_DB_COLUMN_H_
#define GPUDB_DB_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace gpudb {
namespace db {

/// \brief Logical type of a column.
///
/// The paper stores every attribute "as a floating-point number encoded in a
/// 32 bit RGBA texture" (Section 5.1); integer attributes are exact up to 24
/// bits. kInt24 columns hold integral float values in [0, 2^24) and are the
/// only type the depth-buffer algorithms (Compare, KthLargest, Accumulator)
/// accept exactly; kFloat32 columns are used by semi-linear queries.
enum class ColumnType {
  kInt24,
  kFloat32,
};

/// \brief A named column of float-encoded attribute values.
class Column {
 public:
  /// Creates an integer column. Fails if any value is negative, non-integral,
  /// or >= 2^24 (not exactly representable; paper Section 3.3).
  static Result<Column> MakeInt24(std::string name,
                                  const std::vector<uint32_t>& values);

  /// Creates a float column (no range restriction).
  static Result<Column> MakeFloat(std::string name, std::vector<float> values);

  /// Creates a dictionary-encoded string column: the distinct strings are
  /// sorted into a dictionary and each row stores its code as a kInt24
  /// value, so the GPU algorithms operate on codes (order-preserving within
  /// the dictionary) while display layers render the strings. This is how
  /// the introspection system tables (db/catalog) carry metric names and
  /// SQL text through the float-texture engine.
  static Result<Column> MakeDictionary(std::string name,
                                       const std::vector<std::string>& values);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const { return values_.size(); }
  const std::vector<float>& values() const { return values_; }
  float value(size_t i) const { return values_[i]; }

  /// Value as integer; only meaningful for kInt24 columns.
  uint32_t int_value(size_t i) const {
    return static_cast<uint32_t>(values_[i]);
  }

  /// True for dictionary-encoded string columns (type() is kInt24; the
  /// stored values are codes into dictionary()).
  bool has_dictionary() const { return !dictionary_.empty(); }
  const std::vector<std::string>& dictionary() const { return dictionary_; }

  /// The dictionary string behind row i's code (dictionary columns only).
  const std::string& dict_value(size_t i) const {
    return dictionary_[int_value(i)];
  }

  /// Code of `value` in the dictionary, for writing predicates against
  /// dictionary columns (e.g. WHERE name = <code>); error when absent.
  Result<uint32_t> DictCode(std::string_view value) const;

  float min() const { return min_; }
  float max() const { return max_; }

  /// Number of bits needed to represent the maximum value; the paper's
  /// `b_max` driving the pass counts of KthLargest and Accumulator.
  /// Zero-filled columns report 1 so bit-loop algorithms still terminate.
  int bit_width() const;

  /// The smallest value v in the column such that at least `fraction` of all
  /// values are <= v (fraction in [0,1]). Used to target the selectivities
  /// of the paper's experiments (e.g. 60% selectivity = predicate
  /// `x >= Percentile(0.4)`).
  float Percentile(double fraction) const;

 private:
  Column(std::string name, ColumnType type, std::vector<float> values);

  std::string name_;
  ColumnType type_;
  std::vector<float> values_;
  std::vector<std::string> dictionary_;  ///< Sorted; empty unless dict column.
  float min_;
  float max_;
};

}  // namespace db
}  // namespace gpudb

#endif  // GPUDB_DB_COLUMN_H_
