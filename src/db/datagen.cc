#include "src/db/datagen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/random.h"

namespace gpudb {
namespace db {

namespace {

// Clips v to [0, 2^bits - 1].
uint32_t ClipToBits(double v, int bits) {
  const double hi = static_cast<double>((uint64_t{1} << bits) - 1);
  return static_cast<uint32_t>(std::clamp(v, 0.0, hi));
}

}  // namespace

Result<Table> MakeTcpIpTable(size_t count, uint64_t seed) {
  if (count == 0) {
    return Status::InvalidArgument("record count must be positive");
  }
  Random rng(seed);
  std::vector<uint32_t> data_count(count);
  std::vector<uint32_t> data_loss(count);
  std::vector<uint32_t> flow_rate(count);
  std::vector<uint32_t> retransmissions(count);

  for (size_t i = 0; i < count; ++i) {
    // 19-bit, high-variance payload sizes (paper Section 5.9).
    data_count[i] = ClipToBits(rng.NextLognormal(/*mu=*/10.0, /*sigma=*/1.6),
                               /*bits=*/19);
    // Loss events: mostly zero, occasionally bursty.
    const double loss = rng.NextDouble() < 0.8
                            ? 0.0
                            : rng.NextLognormal(/*mu=*/2.0, /*sigma=*/1.0);
    data_loss[i] = ClipToBits(loss, /*bits=*/12);
    // Flow rate in KB/s-ish units; broad positive spread, 20 bits.
    flow_rate[i] = ClipToBits(rng.NextLognormal(/*mu=*/8.0, /*sigma=*/2.0),
                              /*bits=*/20);
    // Retransmission counts: small skewed integers.
    const double retx = rng.NextDouble() < 0.6
                            ? 0.0
                            : rng.NextLognormal(/*mu=*/1.0, /*sigma=*/0.8);
    retransmissions[i] = ClipToBits(retx, /*bits=*/8);
  }
  // Pin the maximum so bit_width() is deterministically 19 even for small
  // tables (the KthLargest pass count depends on it).
  data_count[0] = (1u << 19) - 1;

  Table table;
  GPUDB_ASSIGN_OR_RETURN(Column c0,
                         Column::MakeInt24("data_count", data_count));
  GPUDB_ASSIGN_OR_RETURN(Column c1, Column::MakeInt24("data_loss", data_loss));
  GPUDB_ASSIGN_OR_RETURN(Column c2, Column::MakeInt24("flow_rate", flow_rate));
  GPUDB_ASSIGN_OR_RETURN(
      Column c3, Column::MakeInt24("retransmissions", retransmissions));
  GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(c0)));
  GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(c1)));
  GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(c2)));
  GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(c3)));
  return table;
}

Result<Table> MakeCensusTable(size_t count, uint64_t seed) {
  if (count == 0) {
    return Status::InvalidArgument("record count must be positive");
  }
  Random rng(seed);
  std::vector<uint32_t> income(count);
  std::vector<uint32_t> age(count);
  std::vector<uint32_t> weeks_worked(count);
  std::vector<uint32_t> household(count);

  for (size_t i = 0; i < count; ++i) {
    // Monthly income: lognormal, median ~$2.2K, long right tail, <= 2^18.
    income[i] = ClipToBits(rng.NextLognormal(/*mu=*/7.7, /*sigma=*/0.8),
                           /*bits=*/18);
    // Age 16..90, roughly triangular.
    age[i] = static_cast<uint32_t>(
        16 + (rng.NextUint64(75) + rng.NextUint64(75)) / 2);
    weeks_worked[i] = static_cast<uint32_t>(rng.NextUint64(53));
    household[i] = static_cast<uint32_t>(1 + rng.NextUint64(8));
  }

  Table table;
  GPUDB_ASSIGN_OR_RETURN(Column c0,
                         Column::MakeInt24("monthly_income", income));
  GPUDB_ASSIGN_OR_RETURN(Column c1, Column::MakeInt24("age", age));
  GPUDB_ASSIGN_OR_RETURN(Column c2,
                         Column::MakeInt24("weeks_worked", weeks_worked));
  GPUDB_ASSIGN_OR_RETURN(Column c3,
                         Column::MakeInt24("household_size", household));
  GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(c0)));
  GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(c1)));
  GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(c2)));
  GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(c3)));
  return table;
}

Result<Table> MakeUniformTable(size_t count, int bits, int num_columns,
                               uint64_t seed) {
  if (count == 0) {
    return Status::InvalidArgument("record count must be positive");
  }
  if (bits < 1 || bits > 24) {
    return Status::InvalidArgument("bits must be in [1,24], got " +
                                   std::to_string(bits));
  }
  if (num_columns < 1 || num_columns > 4) {
    return Status::InvalidArgument("num_columns must be in [1,4]");
  }
  Random rng(seed);
  Table table;
  for (int c = 0; c < num_columns; ++c) {
    std::vector<uint32_t> values(count);
    for (auto& v : values) {
      v = static_cast<uint32_t>(rng.NextUint64(uint64_t{1} << bits));
    }
    GPUDB_ASSIGN_OR_RETURN(
        Column col, Column::MakeInt24("u" + std::to_string(c), values));
    GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(col)));
  }
  return table;
}

Result<Table> MakeZipfTable(size_t count, uint32_t domain, double theta,
                            uint64_t seed) {
  if (count == 0) {
    return Status::InvalidArgument("record count must be positive");
  }
  if (domain == 0 || domain >= (1u << 24)) {
    return Status::InvalidArgument("domain must be in [1, 2^24)");
  }
  if (theta <= 0.0) {
    return Status::InvalidArgument("theta must be positive");
  }
  // Inverse-CDF sampling over the (finite) Zipf mass function.
  std::vector<double> cdf(domain);
  double total = 0.0;
  for (uint32_t v = 0; v < domain; ++v) {
    total += 1.0 / std::pow(static_cast<double>(v) + 1.0, theta);
    cdf[v] = total;
  }
  Random rng(seed);
  std::vector<uint32_t> values(count);
  for (auto& out : values) {
    const double u = rng.NextDouble() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    out = static_cast<uint32_t>(it - cdf.begin());
  }
  Table table;
  GPUDB_ASSIGN_OR_RETURN(Column col, Column::MakeInt24("zipf", values));
  GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(col)));
  return table;
}

}  // namespace db
}  // namespace gpudb
