#include "src/db/column.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/bit_util.h"
#include "src/gpu/texture.h"

namespace gpudb {
namespace db {

Column::Column(std::string name, ColumnType type, std::vector<float> values)
    : name_(std::move(name)), type_(type), values_(std::move(values)) {
  auto [lo, hi] = std::minmax_element(values_.begin(), values_.end());
  min_ = values_.empty() ? 0.0f : *lo;
  max_ = values_.empty() ? 0.0f : *hi;
}

Result<Column> Column::MakeInt24(std::string name,
                                 const std::vector<uint32_t>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("column '" + name + "' has no values");
  }
  std::vector<float> as_float(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= gpu::kMaxExactInt) {
      return Status::OutOfRange(
          "column '" + name + "': value " + std::to_string(values[i]) +
          " is not exactly representable in a float texture (max 2^24-1)");
    }
    as_float[i] = static_cast<float>(values[i]);
  }
  return Column(std::move(name), ColumnType::kInt24, std::move(as_float));
}

Result<Column> Column::MakeFloat(std::string name, std::vector<float> values) {
  if (values.empty()) {
    return Status::InvalidArgument("column '" + name + "' has no values");
  }
  for (float v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("column '" + name +
                                     "' contains a non-finite value");
    }
  }
  return Column(std::move(name), ColumnType::kFloat32, std::move(values));
}

Result<Column> Column::MakeDictionary(std::string name,
                                      const std::vector<std::string>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("column '" + name + "' has no values");
  }
  std::vector<std::string> dictionary = values;
  std::sort(dictionary.begin(), dictionary.end());
  dictionary.erase(std::unique(dictionary.begin(), dictionary.end()),
                   dictionary.end());
  if (dictionary.size() >= gpu::kMaxExactInt) {
    return Status::OutOfRange("column '" + name +
                              "': dictionary exceeds 2^24-1 distinct values");
  }
  std::vector<float> codes(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const auto it =
        std::lower_bound(dictionary.begin(), dictionary.end(), values[i]);
    codes[i] = static_cast<float>(it - dictionary.begin());
  }
  Column column(std::move(name), ColumnType::kInt24, std::move(codes));
  column.dictionary_ = std::move(dictionary);
  return column;
}

Result<uint32_t> Column::DictCode(std::string_view value) const {
  const auto it =
      std::lower_bound(dictionary_.begin(), dictionary_.end(), value);
  if (it == dictionary_.end() || *it != value) {
    return Status::InvalidArgument("column '" + name_ +
                                   "': no dictionary entry for '" +
                                   std::string(value) + "'");
  }
  return static_cast<uint32_t>(it - dictionary_.begin());
}

int Column::bit_width() const {
  if (type_ != ColumnType::kInt24) return 0;
  const auto max_int = static_cast<uint64_t>(max_);
  return std::max(1, bit_util::BitWidth(max_int));
}

float Column::Percentile(double fraction) const {
  std::vector<float> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(fraction, 0.0, 1.0);
  if (clamped <= 0.0) return sorted.front();
  const auto rank = static_cast<size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace db
}  // namespace gpudb
