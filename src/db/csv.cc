#include "src/db/csv.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/gpu/texture.h"

namespace gpudb {
namespace db {

namespace {

std::string_view TrimWhitespace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> SplitLine(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      fields.push_back(TrimWhitespace(line.substr(start, i - start)));
      start = i + 1;
    }
  }
  return fields;
}

}  // namespace

Result<Table> ReadCsv(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      const std::string_view line =
          TrimWhitespace(text.substr(start, i - start));
      if (!line.empty()) lines.push_back(line);
      start = i + 1;
    }
  }
  if (lines.empty()) {
    return Status::InvalidArgument("CSV has no header row");
  }
  const std::vector<std::string_view> header = SplitLine(lines[0]);
  const size_t num_cols = header.size();
  for (const auto& name : header) {
    if (name.empty()) {
      return Status::InvalidArgument("CSV header contains an empty name");
    }
  }
  if (lines.size() < 2) {
    return Status::InvalidArgument("CSV has no data rows");
  }

  std::vector<std::vector<float>> columns(num_cols);
  std::vector<bool> is_int(num_cols, true);
  for (size_t row = 1; row < lines.size(); ++row) {
    const std::vector<std::string_view> fields = SplitLine(lines[row]);
    if (fields.size() != num_cols) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(row) + " has " +
          std::to_string(fields.size()) + " fields; header has " +
          std::to_string(num_cols));
    }
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string cell(fields[c]);
      if (cell.empty()) {
        return Status::InvalidArgument("empty cell at row " +
                                       std::to_string(row) + " column " +
                                       std::to_string(c));
      }
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end != cell.c_str() + cell.size() || !std::isfinite(value)) {
        return Status::InvalidArgument("non-numeric value '" + cell +
                                       "' at row " + std::to_string(row) +
                                       " column " + std::to_string(c));
      }
      columns[c].push_back(static_cast<float>(value));
      if (value < 0 || value != std::floor(value) ||
          value >= static_cast<double>(gpu::kMaxExactInt)) {
        is_int[c] = false;
      }
    }
  }

  Table table;
  for (size_t c = 0; c < num_cols; ++c) {
    const std::string name(header[c]);
    if (is_int[c]) {
      std::vector<uint32_t> ints(columns[c].size());
      for (size_t i = 0; i < ints.size(); ++i) {
        ints[i] = static_cast<uint32_t>(columns[c][i]);
      }
      GPUDB_ASSIGN_OR_RETURN(Column col, Column::MakeInt24(name, ints));
      GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(col)));
    } else {
      GPUDB_ASSIGN_OR_RETURN(Column col,
                             Column::MakeFloat(name, std::move(columns[c])));
      GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(col)));
    }
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsv(buffer.str());
}

std::string WriteCsv(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += table.column(c).name();
  }
  out += "\n";
  char buf[64];
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ",";
      const Column& col = table.column(c);
      if (col.type() == ColumnType::kInt24) {
        std::snprintf(buf, sizeof(buf), "%u", col.int_value(row));
      } else {
        std::snprintf(buf, sizeof(buf), "%.9g", col.value(row));
      }
      out += buf;
    }
    out += "\n";
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  file << WriteCsv(table);
  if (!file.good()) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace db
}  // namespace gpudb
