#include "src/db/catalog.h"

#include <utility>

#include "src/common/metrics.h"
#include "src/common/profile.h"
#include "src/common/query_log.h"

namespace gpudb {
namespace db {

namespace {

constexpr std::string_view kSystemTables[] = {
    "gpudb_columns", "gpudb_counters", "gpudb_metrics",
    "gpudb_profile", "gpudb_queries", "gpudb_tables",
};

/// The engine's relations cannot be empty, so an idle telemetry source
/// (e.g. gpudb_queries before any statement ran) is reported as NotFound
/// before column construction, which also rejects empty value vectors.
Status RequireRows(std::string_view name, size_t rows) {
  if (rows == 0) {
    return Status::NotFound("system table '" + std::string(name) +
                            "' has no rows yet");
  }
  return Status::OK();
}

Result<Table> BuildSnapshot(std::vector<Column> columns) {
  Table out;
  for (Column& c : columns) {
    GPUDB_RETURN_NOT_OK(out.AddColumn(std::move(c)));
  }
  return out;
}

/// Shorthands: every Make* failure here is a programming error in the
/// snapshot builders, so propagate with the usual macros.
Result<Column> Dict(std::string name, const std::vector<std::string>& v) {
  return Column::MakeDictionary(std::move(name), v);
}
Result<Column> Floats(std::string name, std::vector<float> v) {
  return Column::MakeFloat(std::move(name), std::move(v));
}
Result<Column> Ints(std::string name, const std::vector<uint32_t>& v) {
  return Column::MakeInt24(std::move(name), v);
}

}  // namespace

Status Catalog::Register(std::string name, const Table* table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register a null table");
  }
  if (name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (IsSystemTable(name)) {
    return Status::InvalidArgument("'" + name +
                                   "' is a reserved system table name");
  }
  MutexLock lock(&mu_);
  if (tables_.count(name) != 0) {
    return Status::InvalidArgument("table '" + name +
                                   "' is already registered");
  }
  const auto it = tables_.emplace(std::move(name), table).first;
  versions_.emplace(it->first, 1);
  return Status::OK();
}

uint64_t Catalog::version(std::string_view table) const {
  MutexLock lock(&mu_);
  const auto it = versions_.find(table);
  return it == versions_.end() ? 0 : it->second;
}

Status Catalog::BumpTableVersion(std::string_view table) {
  // Listeners run outside the lock: they reach into device state (plane
  // cache invalidation) and must not deadlock against catalog readers.
  std::vector<std::function<void(const std::string&)>> listeners;
  {
    MutexLock lock(&mu_);
    const auto it = versions_.find(table);
    if (it == versions_.end()) {
      return Status::NotFound("no table named '" + std::string(table) + "'");
    }
    ++it->second;
    listeners = version_listeners_;
  }
  const std::string name(table);
  for (const auto& listener : listeners) listener(name);
  return Status::OK();
}

void Catalog::AddVersionListener(
    std::function<void(const std::string&)> listener) {
  MutexLock lock(&mu_);
  version_listeners_.push_back(std::move(listener));
}

Result<const Table*> Catalog::Lookup(std::string_view name) const {
  MutexLock lock(&mu_);
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(name) + "'");
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Catalog::SetStats(std::string_view table, TableStats stats) {
  MutexLock lock(&mu_);
  if (tables_.find(table) == tables_.end()) {
    return Status::NotFound("no table named '" + std::string(table) + "'");
  }
  stats_.insert_or_assign(std::string(table), std::move(stats));
  return Status::OK();
}

const TableStats* Catalog::Stats(std::string_view table) const {
  MutexLock lock(&mu_);
  const auto it = stats_.find(table);
  return it == stats_.end() ? nullptr : &it->second;
}

bool Catalog::IsSystemTable(std::string_view name) {
  for (std::string_view s : kSystemTables) {
    if (s == name) return true;
  }
  return false;
}

std::vector<std::string_view> Catalog::SystemTableNames() {
  return {std::begin(kSystemTables), std::end(kSystemTables)};
}

Result<Table> Catalog::MaterializeSystemTable(std::string_view name) const {
  if (name == "gpudb_metrics") return MetricsTable();
  if (name == "gpudb_counters") return CountersTable();
  if (name == "gpudb_profile") return ProfileTable();
  if (name == "gpudb_queries") return QueriesTable();
  if (name == "gpudb_tables") return TablesTable();
  if (name == "gpudb_columns") return ColumnsTable();
  return Status::InvalidArgument("unknown system table '" + std::string(name) +
                                 "'");
}

Result<Table> Catalog::MetricsTable() const {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::vector<std::string> names, kinds;
  std::vector<float> value, count, p50, p95, p99;
  for (const auto& c : snap.counters) {
    names.push_back(c.name);
    kinds.push_back("counter");
    value.push_back(static_cast<float>(c.value));
    count.push_back(0);
    p50.push_back(0);
    p95.push_back(0);
    p99.push_back(0);
  }
  for (const auto& g : snap.gauges) {
    names.push_back(g.name);
    kinds.push_back("gauge");
    value.push_back(static_cast<float>(g.value));
    count.push_back(0);
    p50.push_back(0);
    p95.push_back(0);
    p99.push_back(0);
  }
  for (const auto& h : snap.histograms) {
    names.push_back(h.name);
    kinds.push_back("histogram");
    value.push_back(static_cast<float>(h.sum));
    count.push_back(static_cast<float>(h.count));
    p50.push_back(static_cast<float>(h.p50));
    p95.push_back(static_cast<float>(h.p95));
    p99.push_back(static_cast<float>(h.p99));
  }
  GPUDB_RETURN_NOT_OK(RequireRows("gpudb_metrics", names.size()));
  std::vector<Column> cols;
  GPUDB_ASSIGN_OR_RETURN(Column c0, Dict("name", names));
  GPUDB_ASSIGN_OR_RETURN(Column c1, Dict("kind", kinds));
  GPUDB_ASSIGN_OR_RETURN(Column c2, Floats("value", std::move(value)));
  GPUDB_ASSIGN_OR_RETURN(Column c3, Floats("count", std::move(count)));
  GPUDB_ASSIGN_OR_RETURN(Column c4, Floats("p50", std::move(p50)));
  GPUDB_ASSIGN_OR_RETURN(Column c5, Floats("p95", std::move(p95)));
  GPUDB_ASSIGN_OR_RETURN(Column c6, Floats("p99", std::move(p99)));
  cols.push_back(std::move(c0));
  cols.push_back(std::move(c1));
  cols.push_back(std::move(c2));
  cols.push_back(std::move(c3));
  cols.push_back(std::move(c4));
  cols.push_back(std::move(c5));
  cols.push_back(std::move(c6));
  return BuildSnapshot(std::move(cols));
}

Result<Table> Catalog::CountersTable() const {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::vector<std::string> names;
  std::vector<float> value;
  for (const auto& c : snap.counters) {
    names.push_back(c.name);
    value.push_back(static_cast<float>(c.value));
  }
  GPUDB_RETURN_NOT_OK(RequireRows("gpudb_counters", names.size()));
  std::vector<Column> cols;
  GPUDB_ASSIGN_OR_RETURN(Column c0, Dict("name", names));
  GPUDB_ASSIGN_OR_RETURN(Column c1, Floats("value", std::move(value)));
  cols.push_back(std::move(c0));
  cols.push_back(std::move(c1));
  return BuildSnapshot(std::move(cols));
}

Result<Table> Catalog::ProfileTable() const {
  const std::vector<PassProfileGroup> groups = Profiler::Global().Snapshot();
  std::vector<std::string> labels;
  std::vector<float> passes, fragments, alpha_killed, stencil_killed;
  std::vector<float> depth_tested, depth_killed, passed, occlusion_samples;
  std::vector<float> plane_read, plane_written, fused, cache_hits;
  for (const PassProfileGroup& g : groups) {
    labels.push_back(g.label);
    passes.push_back(static_cast<float>(g.passes));
    fragments.push_back(static_cast<float>(g.fragments));
    alpha_killed.push_back(static_cast<float>(g.prof.alpha_killed));
    stencil_killed.push_back(static_cast<float>(g.prof.stencil_killed));
    depth_tested.push_back(static_cast<float>(g.prof.depth_tested));
    depth_killed.push_back(static_cast<float>(g.prof.depth_killed));
    passed.push_back(static_cast<float>(g.fragments_passed));
    occlusion_samples.push_back(static_cast<float>(g.prof.occlusion_samples));
    plane_read.push_back(static_cast<float>(g.prof.plane_bytes_read));
    plane_written.push_back(static_cast<float>(g.prof.plane_bytes_written));
    fused.push_back(static_cast<float>(g.fused_passes));
    cache_hits.push_back(static_cast<float>(g.cache_hits));
  }
  GPUDB_RETURN_NOT_OK(RequireRows("gpudb_profile", labels.size()));
  std::vector<Column> cols;
  GPUDB_ASSIGN_OR_RETURN(Column c0, Dict("label", labels));
  GPUDB_ASSIGN_OR_RETURN(Column c1, Floats("passes", std::move(passes)));
  GPUDB_ASSIGN_OR_RETURN(Column c2, Floats("fragments", std::move(fragments)));
  GPUDB_ASSIGN_OR_RETURN(Column c3,
                         Floats("alpha_killed", std::move(alpha_killed)));
  GPUDB_ASSIGN_OR_RETURN(Column c4,
                         Floats("stencil_killed", std::move(stencil_killed)));
  GPUDB_ASSIGN_OR_RETURN(Column c5,
                         Floats("depth_tested", std::move(depth_tested)));
  GPUDB_ASSIGN_OR_RETURN(Column c6,
                         Floats("depth_killed", std::move(depth_killed)));
  GPUDB_ASSIGN_OR_RETURN(Column c7, Floats("passed", std::move(passed)));
  GPUDB_ASSIGN_OR_RETURN(
      Column c8, Floats("occlusion_samples", std::move(occlusion_samples)));
  GPUDB_ASSIGN_OR_RETURN(Column c9,
                         Floats("plane_bytes_read", std::move(plane_read)));
  GPUDB_ASSIGN_OR_RETURN(
      Column c10, Floats("plane_bytes_written", std::move(plane_written)));
  GPUDB_ASSIGN_OR_RETURN(Column c11, Floats("fused_passes", std::move(fused)));
  GPUDB_ASSIGN_OR_RETURN(Column c12,
                         Floats("cache_hits", std::move(cache_hits)));
  cols.push_back(std::move(c0));
  cols.push_back(std::move(c1));
  cols.push_back(std::move(c2));
  cols.push_back(std::move(c3));
  cols.push_back(std::move(c4));
  cols.push_back(std::move(c5));
  cols.push_back(std::move(c6));
  cols.push_back(std::move(c7));
  cols.push_back(std::move(c8));
  cols.push_back(std::move(c9));
  cols.push_back(std::move(c10));
  cols.push_back(std::move(c11));
  cols.push_back(std::move(c12));
  return BuildSnapshot(std::move(cols));
}

Result<Table> Catalog::QueriesTable() const {
  const std::vector<QueryLogEntry> entries = QueryLog::Global().Entries();
  std::vector<float> id, wall_ms, queue_ms, exec_ms, simulated_ms, passes,
      fragments, rows_out, fused_passes, cache_hits, device_id;
  std::vector<uint32_t> ok, slow, retries, fell_back, failovers;
  std::vector<std::string> sql, kind, tenant;
  for (const QueryLogEntry& e : entries) {
    id.push_back(static_cast<float>(e.id));
    sql.push_back(e.sql);
    kind.push_back(e.kind);
    ok.push_back(e.ok ? 1 : 0);
    slow.push_back(e.slow ? 1 : 0);
    wall_ms.push_back(static_cast<float>(e.wall_ms));
    queue_ms.push_back(static_cast<float>(e.queue_ms));
    exec_ms.push_back(static_cast<float>(e.exec_ms));
    simulated_ms.push_back(static_cast<float>(e.simulated_ms));
    passes.push_back(static_cast<float>(e.passes));
    fragments.push_back(static_cast<float>(e.fragments));
    rows_out.push_back(static_cast<float>(e.rows_out));
    retries.push_back(static_cast<uint32_t>(e.retries));
    fell_back.push_back(e.fell_back ? 1 : 0);
    fused_passes.push_back(static_cast<float>(e.fused_passes));
    cache_hits.push_back(static_cast<float>(e.cache_hits));
    tenant.push_back(e.tenant.empty() ? "-" : e.tenant);
    device_id.push_back(static_cast<float>(e.device_id));
    failovers.push_back(static_cast<uint32_t>(e.failovers));
  }
  GPUDB_RETURN_NOT_OK(RequireRows("gpudb_queries", entries.size()));
  std::vector<Column> cols;
  GPUDB_ASSIGN_OR_RETURN(Column c0, Floats("id", std::move(id)));
  GPUDB_ASSIGN_OR_RETURN(Column c1, Dict("sql", sql));
  GPUDB_ASSIGN_OR_RETURN(Column c2, Dict("kind", kind));
  GPUDB_ASSIGN_OR_RETURN(Column c3, Ints("ok", ok));
  GPUDB_ASSIGN_OR_RETURN(Column c4, Ints("slow", slow));
  GPUDB_ASSIGN_OR_RETURN(Column c5, Floats("wall_ms", std::move(wall_ms)));
  GPUDB_ASSIGN_OR_RETURN(Column c6, Floats("queue_ms", std::move(queue_ms)));
  GPUDB_ASSIGN_OR_RETURN(Column c7, Floats("exec_ms", std::move(exec_ms)));
  GPUDB_ASSIGN_OR_RETURN(Column c8,
                         Floats("simulated_ms", std::move(simulated_ms)));
  GPUDB_ASSIGN_OR_RETURN(Column c9, Floats("passes", std::move(passes)));
  GPUDB_ASSIGN_OR_RETURN(Column c10, Floats("fragments", std::move(fragments)));
  GPUDB_ASSIGN_OR_RETURN(Column c11, Floats("rows_out", std::move(rows_out)));
  GPUDB_ASSIGN_OR_RETURN(Column c12, Ints("retries", retries));
  GPUDB_ASSIGN_OR_RETURN(Column c13, Ints("fell_back", fell_back));
  GPUDB_ASSIGN_OR_RETURN(Column c14,
                         Floats("fused_passes", std::move(fused_passes)));
  GPUDB_ASSIGN_OR_RETURN(Column c15,
                         Floats("cache_hits", std::move(cache_hits)));
  GPUDB_ASSIGN_OR_RETURN(Column c16, Dict("tenant", tenant));
  GPUDB_ASSIGN_OR_RETURN(Column c17,
                         Floats("device_id", std::move(device_id)));
  GPUDB_ASSIGN_OR_RETURN(Column c18, Ints("failovers", failovers));
  cols.push_back(std::move(c0));
  cols.push_back(std::move(c1));
  cols.push_back(std::move(c2));
  cols.push_back(std::move(c3));
  cols.push_back(std::move(c4));
  cols.push_back(std::move(c5));
  cols.push_back(std::move(c6));
  cols.push_back(std::move(c7));
  cols.push_back(std::move(c8));
  cols.push_back(std::move(c9));
  cols.push_back(std::move(c10));
  cols.push_back(std::move(c11));
  cols.push_back(std::move(c12));
  cols.push_back(std::move(c13));
  cols.push_back(std::move(c14));
  cols.push_back(std::move(c15));
  cols.push_back(std::move(c16));
  cols.push_back(std::move(c17));
  cols.push_back(std::move(c18));
  return BuildSnapshot(std::move(cols));
}

Result<Table> Catalog::TablesTable() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  std::vector<float> rows_col, columns_col, buckets_col;
  std::vector<uint32_t> analyzed;
  for (const auto& [name, table] : tables_) {
    names.push_back(name);
    rows_col.push_back(static_cast<float>(table->num_rows()));
    columns_col.push_back(static_cast<float>(table->num_columns()));
    const auto stats_it = stats_.find(name);
    const TableStats* stats =
        stats_it == stats_.end() ? nullptr : &stats_it->second;
    analyzed.push_back(stats != nullptr && stats->analyzed() ? 1 : 0);
    buckets_col.push_back(
        stats != nullptr ? static_cast<float>(stats->histogram_buckets) : 0);
  }
  GPUDB_RETURN_NOT_OK(RequireRows("gpudb_tables", names.size()));
  std::vector<Column> cols;
  GPUDB_ASSIGN_OR_RETURN(Column c0, Dict("name", names));
  GPUDB_ASSIGN_OR_RETURN(Column c1, Floats("rows", std::move(rows_col)));
  GPUDB_ASSIGN_OR_RETURN(Column c2, Floats("columns", std::move(columns_col)));
  GPUDB_ASSIGN_OR_RETURN(Column c3, Ints("analyzed", analyzed));
  GPUDB_ASSIGN_OR_RETURN(Column c4,
                         Floats("stats_buckets", std::move(buckets_col)));
  cols.push_back(std::move(c0));
  cols.push_back(std::move(c1));
  cols.push_back(std::move(c2));
  cols.push_back(std::move(c3));
  cols.push_back(std::move(c4));
  return BuildSnapshot(std::move(cols));
}

Result<Table> Catalog::ColumnsTable() const {
  MutexLock lock(&mu_);
  std::vector<std::string> table_names, column_names, types;
  std::vector<float> min_col, max_col, distinct_col, bits_col;
  for (const auto& [name, table] : tables_) {
    const auto stats_it = stats_.find(name);
    const TableStats* stats =
        stats_it == stats_.end() ? nullptr : &stats_it->second;
    for (size_t i = 0; i < table->num_columns(); ++i) {
      const Column& c = table->column(i);
      table_names.push_back(name);
      column_names.push_back(c.name());
      types.push_back(c.has_dictionary() ? "dict"
                      : c.type() == ColumnType::kInt24 ? "int24"
                                                       : "float32");
      min_col.push_back(c.min());
      max_col.push_back(c.max());
      bits_col.push_back(static_cast<float>(c.bit_width()));
      const ColumnStats* cs =
          stats != nullptr ? stats->Find(c.name()) : nullptr;
      distinct_col.push_back(
          cs != nullptr ? static_cast<float>(cs->distinct) : 0);
    }
  }
  GPUDB_RETURN_NOT_OK(RequireRows("gpudb_columns", table_names.size()));
  std::vector<Column> cols;
  GPUDB_ASSIGN_OR_RETURN(Column c0, Dict("table_name", table_names));
  GPUDB_ASSIGN_OR_RETURN(Column c1, Dict("column_name", column_names));
  GPUDB_ASSIGN_OR_RETURN(Column c2, Dict("type", types));
  GPUDB_ASSIGN_OR_RETURN(Column c3, Floats("min", std::move(min_col)));
  GPUDB_ASSIGN_OR_RETURN(Column c4, Floats("max", std::move(max_col)));
  GPUDB_ASSIGN_OR_RETURN(Column c5,
                         Floats("distinct", std::move(distinct_col)));
  GPUDB_ASSIGN_OR_RETURN(Column c6, Floats("bit_width", std::move(bits_col)));
  cols.push_back(std::move(c0));
  cols.push_back(std::move(c1));
  cols.push_back(std::move(c2));
  cols.push_back(std::move(c3));
  cols.push_back(std::move(c4));
  cols.push_back(std::move(c5));
  cols.push_back(std::move(c6));
  return BuildSnapshot(std::move(cols));
}

}  // namespace db
}  // namespace gpudb
