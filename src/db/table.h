#ifndef GPUDB_DB_TABLE_H_
#define GPUDB_DB_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/db/column.h"
#include "src/gpu/texture.h"

namespace gpudb {
namespace db {

/// Texture row width used throughout; the paper lays records out in
/// 1000x1000 textures (Section 5.1).
inline constexpr uint32_t kDefaultTextureWidth = 1000;

/// \brief An in-memory relational table: equal-length named columns.
///
/// Tables are the CPU-side source of truth; ToTexture packs columns into the
/// GPU representation (attributes in texel channels, paper Section 3.3:
/// "we store the attributes of each record in multiple channels of a single
/// texel, or the same texel location in multiple textures").
class Table {
 public:
  Table() = default;

  /// Appends a column; all columns must have identical length.
  Status AddColumn(Column column);

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Looks a column up by name.
  Result<const Column*> ColumnByName(std::string_view name) const;

  /// Index of a named column, or an error.
  Result<size_t> ColumnIndex(std::string_view name) const;

  /// Packs the given columns (by index, 1-4 of them) into one texture whose
  /// channels are the columns in order.
  Result<gpu::Texture> ToTexture(const std::vector<size_t>& column_indices,
                                 uint32_t width = kDefaultTextureWidth) const;

  /// Packs a single column into a single-channel texture.
  Result<gpu::Texture> ColumnTexture(
      size_t column_index, uint32_t width = kDefaultTextureWidth) const;

  /// Materializes the given rows (in order, duplicates allowed) as a new
  /// table with the same schema. This is how a SELECT's output becomes a
  /// relation again.
  Result<Table> GatherRows(const std::vector<uint32_t>& row_ids) const;

  /// Renders the given rows (at most `max_rows` of them) as an aligned text
  /// table with a header -- the shell's SELECT * display.
  std::string FormatRows(const std::vector<uint32_t>& row_ids,
                         size_t max_rows = 20) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace db
}  // namespace gpudb

#endif  // GPUDB_DB_TABLE_H_
