#include "src/db/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace gpudb {
namespace db {

namespace {

constexpr char kMagic[4] = {'G', 'P', 'D', 'B'};
constexpr uint32_t kVersion = 1;
// Hard caps so a corrupt header cannot drive huge allocations.
constexpr uint32_t kMaxColumns = 4096;
constexpr uint64_t kMaxRows = 1ull << 32;
constexpr uint32_t kMaxNameLength = 4096;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status WriteBinary(const Table& table, const std::string& path) {
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("cannot serialize an empty table");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(table.num_columns()));
  WritePod(out, static_cast<uint64_t>(table.num_rows()));
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    WritePod(out, static_cast<uint32_t>(col.name().size()));
    out.write(col.name().data(),
              static_cast<std::streamsize>(col.name().size()));
    WritePod(out, static_cast<uint8_t>(
                      col.type() == ColumnType::kInt24 ? 0 : 1));
    out.write(reinterpret_cast<const char*>(col.values().data()),
              static_cast<std::streamsize>(col.values().size() *
                                           sizeof(float)));
  }
  if (!out.good()) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<Table> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a GPDB table file");
  }
  uint32_t version = 0, num_columns = 0;
  uint64_t num_rows = 0;
  if (!ReadPod(in, &version) || !ReadPod(in, &num_columns) ||
      !ReadPod(in, &num_rows)) {
    return Status::InvalidArgument("truncated header in '" + path + "'");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported GPDB version " +
                                   std::to_string(version));
  }
  if (num_columns == 0 || num_columns > kMaxColumns || num_rows == 0 ||
      num_rows > kMaxRows) {
    return Status::InvalidArgument("implausible header in '" + path + "'");
  }

  Table table;
  for (uint32_t c = 0; c < num_columns; ++c) {
    uint32_t name_length = 0;
    if (!ReadPod(in, &name_length) || name_length == 0 ||
        name_length > kMaxNameLength) {
      return Status::InvalidArgument("corrupt column header in '" + path +
                                     "'");
    }
    std::string name(name_length, '\0');
    in.read(name.data(), name_length);
    uint8_t type = 0;
    if (!in.good() || !ReadPod(in, &type) || type > 1) {
      return Status::InvalidArgument("corrupt column header in '" + path +
                                     "'");
    }
    std::vector<float> values(num_rows);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(num_rows * sizeof(float)));
    if (!in.good()) {
      return Status::InvalidArgument("truncated column data in '" + path +
                                     "'");
    }
    if (type == 0) {
      std::vector<uint32_t> ints(num_rows);
      for (uint64_t i = 0; i < num_rows; ++i) {
        const float v = values[i];
        if (v < 0 || v != static_cast<float>(static_cast<uint32_t>(v)) ||
            v >= static_cast<float>(gpu::kMaxExactInt)) {
          return Status::InvalidArgument(
              "Int24 column '" + name + "' contains a non-Int24 value");
        }
        ints[i] = static_cast<uint32_t>(v);
      }
      GPUDB_ASSIGN_OR_RETURN(Column col,
                             Column::MakeInt24(std::move(name), ints));
      GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(col)));
    } else {
      GPUDB_ASSIGN_OR_RETURN(
          Column col, Column::MakeFloat(std::move(name), std::move(values)));
      GPUDB_RETURN_NOT_OK(table.AddColumn(std::move(col)));
    }
  }
  return table;
}

}  // namespace db
}  // namespace gpudb
