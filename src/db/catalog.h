#ifndef GPUDB_DB_CATALOG_H_
#define GPUDB_DB_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/thread_annotations.h"
#include "src/db/stats.h"
#include "src/db/table.h"

namespace gpudb {
namespace db {

/// \brief Name -> relation registry plus the introspection system tables.
///
/// The catalog serves two kinds of relations:
///
///  * **User tables**, registered with Register() (non-owning; the caller
///    keeps the Table alive). ANALYZE stores their TableStats here, and the
///    Planner/Executor read the stats back for estimated-vs-actual row
///    reporting.
///  * **System tables** (`gpudb_metrics`, `gpudb_counters`, `gpudb_profile`,
///    `gpudb_queries`, `gpudb_tables`, `gpudb_columns`): virtual relations
///    materialized on
///    demand from the process's own telemetry (MetricsRegistry, QueryLog,
///    this catalog). A materialized snapshot is an ordinary db::Table --
///    string attributes are dictionary-encoded kInt24 columns -- so system
///    tables run through the normal GPU Executor path: `SELECT * FROM
///    gpudb_metrics WHERE value > 0` renders depth/stencil passes like any
///    other selection.
///
/// The catalog itself holds no GPU state; sql::Session owns devices and
/// executors.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a user table under `name` (must not collide with a system
  /// table or an existing registration). `table` must outlive the catalog.
  Status Register(std::string name, const Table* table);

  /// Looks a registered user table up by name.
  Result<const Table*> Lookup(std::string_view name) const;

  /// Registered user-table names, sorted.
  std::vector<std::string> TableNames() const;

  /// Catalog version of a registered table: 1 at registration, incremented
  /// by BumpTableVersion. Returns 0 for unknown names. Anything derived
  /// from a table's contents (cached depth planes, stats-driven estimates)
  /// keys on (name, version) so stale derivations can never be confused
  /// for fresh ones.
  uint64_t version(std::string_view table) const;

  /// Increments the table's version and synchronously notifies every
  /// registered listener with the table name. Any code path that mutates a
  /// table's backing store (reload, ANALYZE refresh) must call this --
  /// gpulint rule R6 enforces the convention for stats writers.
  Status BumpTableVersion(std::string_view table);

  /// Registers a callback invoked on every version bump. Used by
  /// sql::Session to drop the device's cached depth planes for the table.
  void AddVersionListener(std::function<void(const std::string&)> listener);

  /// Stores ANALYZE statistics for a registered table. The returned pointer
  /// of Stats() stays valid until the next SetStats for the same table.
  /// Storing stats does not bump the version by itself -- the ANALYZE
  /// driver bumps explicitly, because re-derived stats mean the driver just
  /// observed (and possibly changed its reading of) the backing store.
  Status SetStats(std::string_view table, TableStats stats);

  /// Statistics of a table, or nullptr when it has not been ANALYZEd.
  const TableStats* Stats(std::string_view table) const;

  /// True for the gpudb_* virtual table names.
  static bool IsSystemTable(std::string_view name);

  /// The virtual table names, sorted.
  static std::vector<std::string_view> SystemTableNames();

  /// Materializes a snapshot of a system table from live telemetry. Fails
  /// with NotFound when the source has no rows yet (relations cannot be
  /// empty) and InvalidArgument for unknown names.
  Result<Table> MaterializeSystemTable(std::string_view name) const;

 private:
  Result<Table> MetricsTable() const;
  Result<Table> CountersTable() const;
  /// One row per profiled pass label, from Profiler::Global()'s cumulative
  /// deep counters; NotFound until something ran with profiling enabled.
  Result<Table> ProfileTable() const;
  Result<Table> QueriesTable() const;
  Result<Table> TablesTable() const;
  Result<Table> ColumnsTable() const;

  /// Guards every map below: sessions on different threads share one
  /// catalog (DESIGN.md §15), so registration, version bumps, and the
  /// system-table builders must not race. Lock-order level: `catalog` --
  /// listeners are invoked only after mu_ is released (BumpTableVersion
  /// snapshots them), so catalog never holds its lock into pool or device
  /// code. Note Stats() hands out a pointer into stats_ -- concurrent
  /// readers are safe, but re-ANALYZE while other sessions run against the
  /// same table remains the caller's hazard.
  mutable Mutex mu_;
  std::map<std::string, const Table*, std::less<>> tables_ GUARDED_BY(mu_);
  std::map<std::string, TableStats, std::less<>> stats_ GUARDED_BY(mu_);
  std::map<std::string, uint64_t, std::less<>> versions_ GUARDED_BY(mu_);
  std::vector<std::function<void(const std::string&)>> version_listeners_
      GUARDED_BY(mu_);
};

}  // namespace db
}  // namespace gpudb

#endif  // GPUDB_DB_CATALOG_H_
