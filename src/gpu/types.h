#ifndef GPUDB_GPU_TYPES_H_
#define GPUDB_GPU_TYPES_H_

#include <cstdint>
#include <string_view>

namespace gpudb {
namespace gpu {

/// \brief Relational operator used by the alpha, stencil, and depth tests.
///
/// Mirrors the OpenGL comparison functions the paper relies on (Section 3.1:
/// "The relational operator can be any of the following: =, <, >, <=, >=, !=.
/// In addition, there are two operators, never and always.").
enum class CompareOp : uint8_t {
  kNever,
  kLess,
  kLessEqual,
  kEqual,
  kGreaterEqual,
  kGreater,
  kNotEqual,
  kAlways,
};

std::string_view ToString(CompareOp op);

/// Applies `op` to (lhs, rhs): "lhs op rhs".
template <typename T>
inline bool EvalCompare(CompareOp op, T lhs, T rhs) {
  switch (op) {
    case CompareOp::kNever:
      return false;
    case CompareOp::kLess:
      return lhs < rhs;
    case CompareOp::kLessEqual:
      return lhs <= rhs;
    case CompareOp::kEqual:
      return lhs == rhs;
    case CompareOp::kGreaterEqual:
      return lhs >= rhs;
    case CompareOp::kGreater:
      return lhs > rhs;
    case CompareOp::kNotEqual:
      return lhs != rhs;
    case CompareOp::kAlways:
      return true;
  }
  return false;
}

/// Logical negation of a comparison: NOT (x op y) == (x Invert(op) y).
/// Used by the CNF rewriter to eliminate NOT operators (Section 4.2: "If a
/// simple predicate has a NOT operator, we can invert the comparison").
CompareOp Invert(CompareOp op);

/// Mirror image of a comparison: (x op y) == (y Mirror(op) x).
CompareOp Mirror(CompareOp op);

/// \brief Stencil update operation (Section 3.4).
enum class StencilOp : uint8_t {
  kKeep,     ///< Keep the stored stencil value.
  kZero,     ///< Set the stencil value to zero.
  kReplace,  ///< Set the stencil value to the reference value.
  kIncr,     ///< Increment (saturating, as in core OpenGL GL_INCR).
  kDecr,     ///< Decrement (saturating).
  kInvert,   ///< Bitwise invert.
};

std::string_view ToString(StencilOp op);

/// Applies a stencil operation to a stored 8-bit stencil value. Inline
/// because it sits in the per-fragment stencil path of every selection
/// pass.
inline uint8_t ApplyStencilOp(StencilOp op, uint8_t stored, uint8_t ref) {
  switch (op) {
    case StencilOp::kKeep:
      return stored;
    case StencilOp::kZero:
      return 0;
    case StencilOp::kReplace:
      return ref;
    case StencilOp::kIncr:
      return stored == 0xff ? stored : static_cast<uint8_t>(stored + 1);
    case StencilOp::kDecr:
      return stored == 0 ? stored : static_cast<uint8_t>(stored - 1);
    case StencilOp::kInvert:
      return static_cast<uint8_t>(~stored);
  }
  return stored;
}

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_TYPES_H_
