#include "src/gpu/plane_cache.h"

#include <algorithm>
#include <utility>

namespace gpudb {
namespace gpu {

namespace {

uint64_t PlaneBytes(const std::vector<uint32_t>& plane) {
  return static_cast<uint64_t>(plane.size()) * sizeof(uint32_t);
}

}  // namespace

const std::vector<uint32_t>* PlaneCache::Lookup(const PlaneKey& key) {
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.last_used = ++clock_;
      return &e.plane;
    }
  }
  return nullptr;
}

bool PlaneCache::Contains(const PlaneKey& key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) return true;
  }
  return false;
}

void PlaneCache::Insert(const PlaneKey& key, std::vector<uint32_t> plane) {
  for (Entry& e : entries_) {
    if (e.key == key) {
      bytes_ -= PlaneBytes(e.plane);
      e.plane = std::move(plane);
      bytes_ += PlaneBytes(e.plane);
      e.last_used = ++clock_;
      return;
    }
  }
  bytes_ += PlaneBytes(plane);
  entries_.push_back(Entry{key, std::move(plane), ++clock_});
}

bool PlaneCache::EvictLru() {
  if (entries_.empty()) return false;
  auto victim = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
  bytes_ -= PlaneBytes(victim->plane);
  entries_.erase(victim);
  return true;
}

size_t PlaneCache::InvalidateTable(std::string_view table) {
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->key.table == table) {
      bytes_ -= PlaneBytes(it->plane);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void PlaneCache::Clear() {
  entries_.clear();
  bytes_ = 0;
}

}  // namespace gpu
}  // namespace gpudb
