#ifndef GPUDB_GPU_DEVICE_POOL_H_
#define GPUDB_GPU_DEVICE_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/thread_annotations.h"
#include "src/gpu/device.h"
#include "src/gpu/fault_injector.h"

namespace gpudb {
namespace gpu {

/// \brief Health of one device in a DevicePool (DESIGN.md §15).
///
///   healthy ──failure──▶ degraded ──threshold──▶ quarantined
///      ▲                    │ success                │ probe success
///      └────────────────────┴─────────────────────────┘
///
/// `degraded` means 1..threshold-1 consecutive device faults: the device
/// still serves dispatches, but it is one bad streak away from quarantine.
/// `quarantined` devices are skipped by AdmitDispatch except for every
/// `probe_interval`-th ask (counted in calls, not wall time, so recovery is
/// deterministic under test); one probe success returns them to healthy.
enum class DeviceHealth { kHealthy, kDegraded, kQuarantined };

std::string_view ToString(DeviceHealth health);

/// \brief Construction parameters for a DevicePool.
struct DevicePoolOptions {
  int devices = 1;            ///< Pool size (N simulated adapters).
  uint32_t width = 1000;      ///< Framebuffer width of every device.
  uint32_t height = 1000;     ///< Framebuffer height of every device.
  int worker_threads = 0;     ///< Pixel engines per device; 0 = default.
  uint64_t vram_budget = 0;   ///< Per-device VRAM budget bytes; 0 = default.
  /// Base fault configuration; device i runs with `device_id = i`, so each
  /// failure domain draws from its own deterministic stream (seed ^
  /// SplitMix64(i)) regardless of dispatch interleaving.
  FaultConfig faults;
  int quarantine_threshold = 3;  ///< Consecutive faults before quarantine.
  int probe_interval = 8;        ///< Every n-th ask probes a quarantined dev.
};

/// \brief A pool of N simulated Devices, each its own failure domain.
///
/// The pool owns the devices and two orthogonal pieces of state per device:
///
///  * an **execution mutex** -- devices are single-context (the 2004 driver
///    model), so callers take an exclusive Lease per dispatch. Queries on
///    different devices run concurrently; dispatches to the same device
///    serialize. The health state below is *not* covered by the lease.
///  * a **health state machine** (DeviceHealth above) fed by
///    RecordFailure/RecordSuccess from the scatter/gather executor. A
///    quarantined or force-lost device is refused by AdmitDispatch, which is
///    what triggers shard failover to the replica device (core/pool_executor).
///
/// ForceDeviceLost models pulling a card mid-flight: the device refuses all
/// dispatches (probes included) until Revive. Metrics: the
/// `pool.device_state` gauge is the sum of state ordinals across the pool
/// (0 = all healthy) and `pool.failovers` counts every shard that had to
/// move off its primary. Thread-safe.
class DevicePool {
 public:
  [[nodiscard]] static Result<std::unique_ptr<DevicePool>> Make(
      const DevicePoolOptions& options);

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  int size() const { return static_cast<int>(slots_.size()); }
  const DevicePoolOptions& options() const { return options_; }

  /// \brief Exclusive use of one device for the lease's lifetime.
  class Lease {
   public:
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = default;

    Device& device() { return *device_; }
    int id() const { return id_; }

   private:
    friend class DevicePool;
    Lease(Device* device, int id, std::unique_lock<std::mutex> lock)
        : device_(device), id_(id), lock_(std::move(lock)) {}

    Device* device_;
    int id_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Blocks until device `id` is free, then returns its exclusive lease.
  [[nodiscard]] Lease Acquire(int id);

  /// Acquire plus a hot-unplug re-check under the health lock. An
  /// AdmitDispatch verdict is a snapshot: the card can be pulled
  /// (ForceDeviceLost) while the caller waits for the lease -- exactly the
  /// window a recovery probe to a busy device sits in. Re-checking once the
  /// lease is held turns that race into a deterministic Unavailable, so the
  /// caller fails over instead of dispatching to a yanked device. (The
  /// remaining mid-dispatch window is inherent to hot-unplug and surfaces
  /// as a device fault.)
  [[nodiscard]] Result<Lease> TryAcquire(int id);

  /// Health gate consulted before dispatching to `id`: true when the device
  /// should be tried. Healthy/degraded devices always pass; quarantined
  /// devices pass only on every `probe_interval`-th ask (the recovery
  /// probe); force-lost devices never pass.
  bool AdmitDispatch(int id);

  DeviceHealth health(int id) const;

  /// One device fault (kDeviceLost/kResourceExhausted/kInternal after
  /// retries) attributed to `id`.
  void RecordFailure(int id);

  /// A dispatch to `id` succeeded; closes the failure streak (a quarantined
  /// device that just served a probe returns to healthy).
  void RecordSuccess(int id);

  /// A shard had to move off device `id` (to its replica or the CPU tier).
  void RecordFailover(int id);

  /// Simulated hot-unplug: `id` refuses all dispatches until Revive.
  void ForceDeviceLost(int id);
  void Revive(int id);
  bool forced_lost(int id) const;

  uint64_t failovers() const;

  /// Direct device access for setup (texture preload, viewport checks).
  /// Callers that dispatch work must go through Acquire instead.
  Device& device(int id) { return *slots_[static_cast<size_t>(id)].device; }

 private:
  struct Slot {
    std::unique_ptr<Device> device;
    std::unique_ptr<std::mutex> exec_mu;  ///< The Lease lock.
    // Health fields below are guarded by DevicePool::mu_.
    int consecutive_failures = 0;
    int asks_while_quarantined = 0;
    bool forced_lost = false;
  };

  explicit DevicePool(const DevicePoolOptions& options)
      : options_(options) {}

  DeviceHealth HealthLocked(const Slot& slot) const REQUIRES(mu_);
  void UpdateStateGaugeLocked() REQUIRES(mu_);

  // lint: lock-free (written only inside Make, before the pool is shared)
  DevicePoolOptions options_;
  /// The vector's shape is fixed in Make; Slot.device/exec_mu are stable
  /// thereafter. The mutable per-slot health fields are documented as
  /// guarded by mu_ on Slot (a nested struct cannot name the enclosing
  /// instance's capability in a GUARDED_BY attribute).
  // lint: lock-free (shape fixed after Make; Slot health fields under mu_)
  std::vector<Slot> slots_;
  /// Guards slot health fields + failovers_. Lock-order level: `pool`
  /// (health) -- taken briefly while a Lease (device level) is already
  /// held when the executor records a dispatch outcome, and never held
  /// across a call into device, session, or catalog code.
  mutable Mutex mu_;
  uint64_t failovers_ GUARDED_BY(mu_) = 0;
};

/// $GPUDB_DEVICES as an int; `fallback` when unset/invalid.
int DevicesFromEnv(int fallback = 1);

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_DEVICE_POOL_H_
