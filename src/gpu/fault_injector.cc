#include "src/gpu/fault_injector.h"

#include <cstdlib>
#include <utility>

#include "src/common/metrics.h"

namespace gpudb {
namespace gpu {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

namespace {

/// Injection metrics, cached like DeviceMetrics in device.cc.
struct FaultMetrics {
  MetricCounter& injected =
      MetricsRegistry::Global().counter("faults.injected");
  MetricCounter& alloc =
      MetricsRegistry::Global().counter("faults.injected.alloc");
  MetricCounter& pass =
      MetricsRegistry::Global().counter("faults.injected.pass");
  MetricCounter& occlusion =
      MetricsRegistry::Global().counter("faults.injected.occlusion");
  MetricCounter& readback =
      MetricsRegistry::Global().counter("faults.injected.readback");

  static FaultMetrics& Get() {
    static FaultMetrics* m = new FaultMetrics();
    return *m;
  }
};

MetricCounter& SiteCounter(const char* site) {
  FaultMetrics& m = FaultMetrics::Get();
  switch (site[0]) {
    case 'a':
      return m.alloc;
    case 'p':
      return m.pass;
    case 'o':
      return m.occlusion;
    default:
      return m.readback;
  }
}

}  // namespace

void FaultInjector::Configure(const FaultConfig& config) {
  config_ = config;
  if (config_.rate < 0.0) config_.rate = 0.0;
  if (config_.rate > 1.0) config_.rate = 1.0;
  draws_ = 0;
  faults_ = 0;
}

FaultConfig FaultInjector::ConfigFromEnv() {
  FaultConfig config;
  if (const char* seed = std::getenv("GPUDB_FAULT_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* rate = std::getenv("GPUDB_FAULT_RATE")) {
    config.rate = std::atof(rate);
  }
  return config;
}

bool FaultInjector::Draw() {
  const uint64_t bits =
      SplitMix64(config_.effective_seed() ^ SplitMix64(++draws_));
  // 53 high bits -> uniform double in [0, 1).
  const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return u < config_.rate;
}

Status FaultInjector::Inject(const char* site, std::string message) {
  ++faults_;
  FaultMetrics::Get().injected.Increment();
  SiteCounter(site).Increment();
  return Status::DeviceLost(std::move(message));
}

Status FaultInjector::OnAllocation(uint64_t bytes) {
  if (!enabled() || !Draw()) return Status::OK();
  return Inject("alloc", "injected: video memory allocation of " +
                             std::to_string(bytes) + " bytes failed");
}

Status FaultInjector::OnPass() {
  if (!enabled() || !Draw()) return Status::OK();
  return Inject("pass", "injected: watchdog timeout aborted rendering pass");
}

Status FaultInjector::OnOcclusionReadback() {
  if (!enabled() || !Draw()) return Status::OK();
  return Inject("occlusion",
                "injected: occlusion query result lost in transit");
}

Status FaultInjector::OnReadback(std::string_view what) {
  if (!enabled() || !Draw()) return Status::OK();
  return Inject("readback", "injected: " + std::string(what) +
                                " readback corruption detected");
}

uint64_t VramBudgetBytesFromEnv() {
  const char* bytes = std::getenv("GPUDB_VRAM_BUDGET");
  return bytes != nullptr ? std::strtoull(bytes, nullptr, 10) : 0;
}

double DeadlineMsFromEnv() {
  const char* ms = std::getenv("GPUDB_DEADLINE_MS");
  return ms != nullptr ? std::atof(ms) : 0.0;
}

}  // namespace gpu
}  // namespace gpudb
