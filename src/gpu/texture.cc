#include "src/gpu/texture.h"

#include <string>

#include "src/common/bit_util.h"

namespace gpudb {
namespace gpu {

Result<Texture> Texture::Make(uint32_t width, uint32_t height, int channels) {
  if (width == 0 || height == 0) {
    return Status::InvalidArgument("texture dimensions must be positive");
  }
  if (channels < 1 || channels > kMaxChannels) {
    return Status::InvalidArgument("texture must have 1-4 channels, got " +
                                   std::to_string(channels));
  }
  return Texture(width, height, channels);
}

Result<Texture> Texture::FromColumns(
    const std::vector<const std::vector<float>*>& values, uint32_t width) {
  if (values.empty() || values.size() > static_cast<size_t>(kMaxChannels)) {
    return Status::InvalidArgument(
        "FromColumns requires 1-4 channel vectors, got " +
        std::to_string(values.size()));
  }
  if (width == 0) {
    return Status::InvalidArgument("texture width must be positive");
  }
  for (const auto* v : values) {
    if (v == nullptr) {
      return Status::InvalidArgument("null channel vector");
    }
  }
  const size_t count = values[0]->size();
  if (count == 0) {
    return Status::InvalidArgument("cannot build a texture from 0 records");
  }
  for (const auto* v : values) {
    if (v->size() != count) {
      return Status::InvalidArgument("channel vectors must have equal length");
    }
  }
  const uint32_t height =
      static_cast<uint32_t>(bit_util::CeilDiv(count, width));
  GPUDB_ASSIGN_OR_RETURN(Texture tex,
                         Make(width, height, static_cast<int>(values.size())));
  tex.valid_texels_ = count;
  for (size_t i = 0; i < count; ++i) {
    for (size_t c = 0; c < values.size(); ++c) {
      tex.Set(i, static_cast<int>(c), (*values[c])[i]);
    }
  }
  return tex;
}

}  // namespace gpu
}  // namespace gpudb
