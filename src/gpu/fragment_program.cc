#include "src/gpu/fragment_program.h"

#include <algorithm>
#include <cmath>

#include "src/gpu/types.h"

namespace gpudb {
namespace gpu {

void CopyToDepthProgram::Execute(const FragmentInput& in,
                                 FragmentOutput* out) const {
  // 1. Texture fetch.
  const float v = in.tex0->At(in.texel_index, channel_);
  // 2. Normalization to [0,1] (double internally; see header).
  // 3. Copy to fragment depth.
  out->depth = static_cast<float>((static_cast<double>(v) - offset_) * scale_);
  out->depth_written = true;
}

SemilinearProgram::SemilinearProgram(const std::array<float, 4>& weights,
                                     CompareOp op, float b)
    : weights_(weights), op_(op), b_(b) {}

void SemilinearProgram::Execute(const FragmentInput& in,
                                FragmentOutput* out) const {
  const Texture& tex = *in.tex0;
  float dot = 0.0f;
  for (int c = 0; c < tex.channels(); ++c) {
    dot += weights_[c] * tex.At(in.texel_index, c);
  }
  // KILL fragments failing the comparison; survivors carry the dot product in
  // the red channel for debugging/inspection.
  if (!EvalCompare(op_, dot, b_)) {
    out->discarded = true;
    return;
  }
  out->color = {dot, 0.0f, 0.0f, 1.0f};
}

void TestBitProgram::Execute(const FragmentInput& in,
                             FragmentOutput* out) const {
  const float v = in.tex0->At(in.texel_index, channel_);
  // alpha = frac(v / 2^(bit+1)); for non-negative integers v this is >= 0.5
  // iff bit `bit_` of v is set (paper Section 4.3.3). Computed in float32 as
  // the hardware would: v <= 2^24 is exact in fp32 and dividing by a power of
  // two is exact, so frac() is exact as well.
  const float scaled = v / std::exp2f(static_cast<float>(bit_ + 1));
  const float frac = scaled - std::floor(scaled);
  out->color = {0.0f, 0.0f, 0.0f, frac};
}

void TestBitKillProgram::Execute(const FragmentInput& in,
                                 FragmentOutput* out) const {
  const float v = in.tex0->At(in.texel_index, channel_);
  const float scaled = v / std::exp2f(static_cast<float>(bit_ + 1));
  const float frac = scaled - std::floor(scaled);
  if (frac < 0.5f) {
    out->discarded = true;
    return;
  }
  out->color = {0.0f, 0.0f, 0.0f, frac};
}

WideSemilinearProgram::WideSemilinearProgram(
    const std::array<float, 8>& weights, CompareOp op, float b)
    : weights_(weights), op_(op), b_(b) {}

void WideSemilinearProgram::Execute(const FragmentInput& in,
                                    FragmentOutput* out) const {
  float dot = 0.0f;
  if (in.tex0 != nullptr) {
    for (int c = 0; c < in.tex0->channels(); ++c) {
      dot += weights_[c] * in.tex0->At(in.texel_index, c);
    }
  }
  if (in.tex1 != nullptr) {
    for (int c = 0; c < in.tex1->channels(); ++c) {
      dot += weights_[4 + c] * in.tex1->At(in.texel_index, c);
    }
  }
  if (!EvalCompare(op_, dot, b_)) {
    out->discarded = true;
    return;
  }
  out->color = {dot, 0.0f, 0.0f, 1.0f};
}

PolynomialProgram::PolynomialProgram(const std::array<float, 4>& weights,
                                     const std::array<int, 4>& exponents,
                                     CompareOp op, float b)
    : weights_(weights), exponents_(exponents), op_(op), b_(b) {
  // Fetch + final compare/KILL, plus per active term: the MULs for the
  // power expansion and one MAD to accumulate.
  instruction_count_ = 2;
  for (int c = 0; c < 4; ++c) {
    if (weights_[c] != 0.0f) {
      instruction_count_ += 1 + std::max(0, exponents_[c] - 1);
    }
  }
}

void PolynomialProgram::Execute(const FragmentInput& in,
                                FragmentOutput* out) const {
  const Texture& tex = *in.tex0;
  float poly = 0.0f;
  for (int c = 0; c < tex.channels(); ++c) {
    if (weights_[c] == 0.0f) continue;
    float power = 1.0f;
    for (int e = 0; e < exponents_[c]; ++e) {
      power *= tex.At(in.texel_index, c);
    }
    poly += weights_[c] * power;
  }
  if (!EvalCompare(op_, poly, b_)) {
    out->discarded = true;
    return;
  }
  out->color = {poly, 0.0f, 0.0f, 1.0f};
}

void BitonicStepProgram::Execute(const FragmentInput& in,
                                 FragmentOutput* out) const {
  const uint64_t i = in.texel_index;
  const uint64_t partner = i ^ j_;
  const float self = in.tex0->At(i, 0);
  const float other = in.tex0->At(partner, 0);
  // Ascending block if (i & k) == 0. Keep the smaller element at the lower
  // index of the pair within ascending blocks, the larger within descending.
  const bool ascending = (i & k_) == 0;
  const bool lower_of_pair = (i & j_) == 0;
  const bool keep_min = ascending == lower_of_pair;
  const float result =
      keep_min ? (self < other ? self : other) : (self > other ? self : other);
  out->color = {result, 0.0f, 0.0f, 1.0f};
}

void BitonicPairStepProgram::Execute(const FragmentInput& in,
                                     FragmentOutput* out) const {
  const uint64_t i = in.texel_index;
  const uint64_t partner = i ^ j_;
  const float self_key = in.tex0->At(i, 0);
  const float self_payload = in.tex0->At(i, 1);
  const float other_key = in.tex0->At(partner, 0);
  const float other_payload = in.tex0->At(partner, 1);
  const bool ascending = (i & k_) == 0;
  const bool lower_of_pair = (i & j_) == 0;
  const bool keep_min = ascending == lower_of_pair;
  // Tie-break deterministically on the payload so equal keys still order
  // consistently (needed for a total order over (key, row) pairs).
  const bool self_smaller =
      self_key != other_key ? self_key < other_key
                            : self_payload < other_payload;
  const bool take_self = keep_min == self_smaller;
  out->color = {take_self ? self_key : other_key,
                take_self ? self_payload : other_payload, 0.0f, 1.0f};
}

void PassthroughProgram::Execute(const FragmentInput& in,
                                 FragmentOutput* out) const {
  const float v = in.tex0->At(in.texel_index, channel_);
  out->color = {v, v, v, 1.0f};
}

}  // namespace gpu
}  // namespace gpudb
