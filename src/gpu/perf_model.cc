#include "src/gpu/perf_model.h"

#include <algorithm>
#include <cstdio>

namespace gpudb {
namespace gpu {

double PerfModel::PassFillMs(const PassRecord& pass) const {
  // Each pipe retires one instruction per fragment per clock; fixed-function
  // passes (depth/stencil-only) cost one cycle per fragment.
  const double instr = std::max(1, pass.fp_instructions);
  const double cycles = static_cast<double>(pass.fragments) * instr;
  const double throughput =
      params_.clock_hz * static_cast<double>(params_.pixel_pipes);
  return cycles / throughput * 1e3;
}

GpuTimeBreakdown PerfModel::Estimate(const DeviceCounters& counters) const {
  GpuTimeBreakdown b;
  const double throughput =
      params_.clock_hz * static_cast<double>(params_.pixel_pipes);
  for (const PassRecord& pass : counters.pass_log) {
    b.fill_ms += PassFillMs(pass);
    b.depth_write_ms += static_cast<double>(pass.depth_writes) *
                        params_.depth_write_cycles / throughput * 1e3;
    b.setup_ms += params_.pass_setup_ms;
  }
  b.readback_ms += static_cast<double>(counters.occlusion_readbacks) *
                   params_.occlusion_readback_ms;
  b.upload_ms = static_cast<double>(counters.bytes_uploaded) /
                params_.upload_bytes_per_ms;
  b.swap_ms = static_cast<double>(counters.bytes_swapped) /
              params_.upload_bytes_per_ms;
  // Occlusion counts (4 bytes each) are covered by the latency term above;
  // bulk buffer readbacks are charged at PCI bandwidth.
  const double bulk_bytes =
      static_cast<double>(counters.bytes_read_back) -
      4.0 * static_cast<double>(counters.occlusion_readbacks);
  b.buffer_readback_ms =
      std::max(0.0, bulk_bytes) / params_.readback_bytes_per_ms;
  return b;
}

double PerfModel::Utilization(const DeviceCounters& counters) const {
  const GpuTimeBreakdown b = Estimate(counters);
  const double total = b.ComputeMs();
  if (total <= 0) return 1.0;
  return b.fill_ms / total;
}

std::string PerfModel::FormatBreakdown(const GpuTimeBreakdown& b) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "fill=%.3fms depth_write=%.3fms setup=%.3fms "
                "occl_readback=%.3fms buf_readback=%.3fms total=%.3fms",
                b.fill_ms, b.depth_write_ms, b.setup_ms, b.readback_ms,
                b.buffer_readback_ms, b.TotalMs());
  return std::string(buf);
}

}  // namespace gpu
}  // namespace gpudb
