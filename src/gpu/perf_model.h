#ifndef GPUDB_GPU_PERF_MODEL_H_
#define GPUDB_GPU_PERF_MODEL_H_

#include <string>

#include "src/gpu/counters.h"

namespace gpudb {
namespace gpu {

/// \brief Analytic timing model of the paper's GPU testbed (NVIDIA GeForce
/// FX 5900 Ultra: 450 MHz core, 8 pixel pipes, 256 MB video memory, AGP 8x).
///
/// The model converts the exact work recorded in DeviceCounters into
/// simulated milliseconds. Its constants are calibrated from numbers stated
/// in the paper itself (see DESIGN.md section 6):
///
///  * A simple one-cycle pass over a 1000x1000 quad takes
///    10^6 / (8 x 450 MHz) = 0.278 ms -- stated directly in Section 6.2.2.
///  * Per-pass overhead (setup + occlusion readback) back-solved from the
///    same section: 19 passes ideal 5.28 ms vs 6.6 ms observed (~80%
///    pipeline utilization) gives ~70 us per pass, which we split into
///    10 us setup + 60 us occlusion readback.
///  * Depth-buffer writes are charged 3 extra cycles per fragment; with the
///    3-instruction copy program this makes CopyToDepth cost ~1.67 ms per
///    million records, the value that simultaneously reproduces the paper's
///    Figure 3 (20x compute-only / 3x overall) and Figure 4 (40x / 5.5x)
///    ratios.
struct PerfModelParams {
  double clock_hz = 450e6;            ///< Core clock.
  int pixel_pipes = 8;                ///< Parallel pixel processing engines.
  double depth_write_cycles = 3.0;    ///< Extra cycles per depth write.
  double pass_setup_ms = 0.010;       ///< Driver/pipeline setup per pass.
  double occlusion_readback_ms = 0.060;  ///< Latency per query readback.
  double upload_bytes_per_ms = 2.1e6;    ///< AGP 8x effective bandwidth.
  double readback_bytes_per_ms = 0.8e6;  ///< PCI readback bandwidth.
};

/// \brief Cost breakdown for a sequence of passes.
struct GpuTimeBreakdown {
  double fill_ms = 0;        ///< Fragment processing (instructions x frags).
  double depth_write_ms = 0; ///< Depth-buffer write penalty.
  double setup_ms = 0;       ///< Per-pass fixed overhead.
  double readback_ms = 0;    ///< Occlusion query readbacks.
  double upload_ms = 0;      ///< CPU->GPU texture transfer.
  double swap_ms = 0;        ///< Re-uploads of evicted textures (Section 6.1).
  double buffer_readback_ms = 0;  ///< Bulk stencil/depth/color readbacks.

  /// Time attributable to computation alone (the paper's "computation time
  /// only" comparisons exclude data transfer but include all passes).
  double ComputeMs() const {
    return fill_ms + depth_write_ms + setup_ms + readback_ms;
  }
  /// End-to-end time excluding initial texture upload (the paper keeps data
  /// resident in video memory and excludes upload from its timings), but
  /// including swap traffic: out-of-core re-uploads are part of running the
  /// operation, not of loading the database.
  double TotalMs() const {
    return ComputeMs() + buffer_readback_ms + swap_ms;
  }
};

/// \brief Converts DeviceCounters into simulated GeForce FX 5900 time.
class PerfModel {
 public:
  PerfModel() = default;
  explicit PerfModel(const PerfModelParams& params) : params_(params) {}

  const PerfModelParams& params() const { return params_; }

  /// Cost of a single recorded pass in milliseconds, excluding per-pass
  /// setup overhead (the "ideal" time of Section 6.2.2).
  double PassFillMs(const PassRecord& pass) const;

  /// Full breakdown for everything recorded in `counters`.
  GpuTimeBreakdown Estimate(const DeviceCounters& counters) const;

  /// Convenience: Estimate(counters).TotalMs().
  double EstimateMs(const DeviceCounters& counters) const {
    return Estimate(counters).TotalMs();
  }

  /// Pipeline utilization = ideal fill time / (fill + overheads), the metric
  /// the paper reports as ~80% for KthLargest (Section 6.2.2).
  double Utilization(const DeviceCounters& counters) const;

  /// Human-readable dump of the breakdown, used by the bench harness.
  static std::string FormatBreakdown(const GpuTimeBreakdown& b);

 private:
  PerfModelParams params_;
};

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_PERF_MODEL_H_
