#ifndef GPUDB_GPU_RASTERIZER_H_
#define GPUDB_GPU_RASTERIZER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/gpu/geometry.h"

namespace gpudb {
namespace gpu {

/// \brief Scissor rectangle in window coordinates, half-open:
/// pixels with x in [x0, x1) and y in [y0, y1) pass.
struct ScissorRect {
  uint32_t x0 = 0, y0 = 0;
  uint32_t x1 = 0, y1 = 0;

  bool Contains(uint32_t x, uint32_t y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
  uint64_t Area() const {
    return uint64_t{x1 - x0} * (y1 - y0);
  }
};

/// \brief A fragment emitted by the setup/rasterization stage: pixel
/// coordinates plus interpolated depth and texture coordinates.
struct RasterFragment {
  uint32_t x = 0, y = 0;
  float depth = 0;
  float u = 0, v = 0;
};

namespace raster_detail {

/// Signed area of (a,b,p) in double precision; integer-cornered quads and
/// half-integer sample points stay exact.
inline double Orient(double ax, double ay, double bx, double by, double px,
                     double py) {
  return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
}

/// Top-left fill rule: a fragment exactly on an edge belongs to the
/// triangle only if that edge is a top or left edge, so a shared edge is
/// covered exactly once. With the positive-orientation winding used below
/// (y grows downward): a "left" edge goes downward (b.y > a.y), a "top"
/// edge is horizontal going leftward (b.x < a.x).
inline bool IsTopLeft(const ScreenVertex& a, const ScreenVertex& b) {
  if (a.y == b.y) return b.x < a.x;
  return b.y > a.y;
}

}  // namespace raster_detail

/// \brief The setup engine + rasterizer (paper Section 3.1: "Transformed
/// vertex data is streamed to the setup engine which generates slope and
/// initial value information ... used during rasterization for constructing
/// fragments at each pixel location covered by the primitive").
///
/// Rasterizes one triangle given screen-space vertices: edge-function
/// coverage with the top-left fill rule (shared edges covered exactly once),
/// pixel centers at (x+0.5, y+0.5), barycentric interpolation of depth and
/// texcoords. Fragments outside the scissor rectangle are culled before the
/// emitter is called. Winding is irrelevant (no face culling).
///
/// `Emit` is any callable taking `const RasterFragment&`. Templating the
/// emitter (instead of routing through a std::function) lets the per-fragment
/// call inline into the scanline loop, which matters when a pass covers a
/// million pixels.
template <typename Emit>
void RasterizeTriangle(const ScreenVertex& a, const ScreenVertex& b,
                       const ScreenVertex& c, const ScissorRect& scissor,
                       Emit&& emit) {
  using raster_detail::IsTopLeft;
  using raster_detail::Orient;

  const ScreenVertex* v0 = &a;
  const ScreenVertex* v1 = &b;
  const ScreenVertex* v2 = &c;
  double area = Orient(v0->x, v0->y, v1->x, v1->y, v2->x, v2->y);
  if (area == 0) return;  // degenerate
  if (area < 0) {
    std::swap(v1, v2);
    area = -area;
  }

  // Bounding box clipped to the scissor rectangle.
  const double min_x = std::min({v0->x, v1->x, v2->x});
  const double max_x = std::max({v0->x, v1->x, v2->x});
  const double min_y = std::min({v0->y, v1->y, v2->y});
  const double max_y = std::max({v0->y, v1->y, v2->y});
  const auto x_begin = static_cast<int64_t>(
      std::max<double>(scissor.x0, std::floor(min_x)));
  const auto x_end = static_cast<int64_t>(
      std::min<double>(scissor.x1, std::ceil(max_x)));
  const auto y_begin = static_cast<int64_t>(
      std::max<double>(scissor.y0, std::floor(min_y)));
  const auto y_end = static_cast<int64_t>(
      std::min<double>(scissor.y1, std::ceil(max_y)));
  if (x_begin >= x_end || y_begin >= y_end) return;

  const bool flat_depth = v0->depth == v1->depth && v1->depth == v2->depth;
  const bool e01_tl = IsTopLeft(*v0, *v1);
  const bool e12_tl = IsTopLeft(*v1, *v2);
  const bool e20_tl = IsTopLeft(*v2, *v0);

  RasterFragment frag;
  for (int64_t y = y_begin; y < y_end; ++y) {
    const double py = static_cast<double>(y) + 0.5;
    for (int64_t x = x_begin; x < x_end; ++x) {
      const double px = static_cast<double>(x) + 0.5;
      // Edge functions; fragment is in iff all are positive, or zero on a
      // top-left edge.
      const double e01 = Orient(v0->x, v0->y, v1->x, v1->y, px, py);
      if (e01 < 0 || (e01 == 0 && !e01_tl)) continue;
      const double e12 = Orient(v1->x, v1->y, v2->x, v2->y, px, py);
      if (e12 < 0 || (e12 == 0 && !e12_tl)) continue;
      const double e20 = Orient(v2->x, v2->y, v0->x, v0->y, px, py);
      if (e20 < 0 || (e20 == 0 && !e20_tl)) continue;

      // Barycentric weights: vertex i is weighted by the edge function of
      // the opposite edge.
      const double w0 = e12 / area;
      const double w1 = e20 / area;
      const double w2 = e01 / area;
      frag.x = static_cast<uint32_t>(x);
      frag.y = static_cast<uint32_t>(y);
      // Constant attributes pass through exactly (the setup engine computes
      // zero slopes); this preserves the bit-exact depth the database
      // algorithms rely on when rendering screen-aligned quads.
      frag.depth = flat_depth
                       ? v0->depth
                       : static_cast<float>(w0 * v0->depth + w1 * v1->depth +
                                            w2 * v2->depth);
      frag.u = static_cast<float>(w0 * v0->u + w1 * v1->u + w2 * v2->u);
      frag.v = static_cast<float>(w0 * v0->v + w1 * v1->v + w2 * v2->v);
      emit(frag);
    }
  }
}

/// \brief Span fast path for screen-aligned rectangles at constant depth:
/// emits one fragment per covered pixel in row-major order without
/// evaluating edge functions.
///
/// A rect split into its two triangles and fed to RasterizeTriangle covers
/// exactly the pixels with centers inside [x0,x1) x [y0,y1), once each (the
/// shared diagonal is top-left on exactly one triangle), with depth passed
/// through exactly (flat) and texcoords interpolating to the pixel center.
/// This routine emits the identical fragment stream directly, so quad passes
/// -- the only geometry the database algorithms draw -- skip triangle setup
/// entirely. `rect` must already be clipped to the scissor.
template <typename Emit>
void RasterizeRectRows(const ScissorRect& rect, float depth, uint32_t y_begin,
                       uint32_t y_end, Emit&& emit) {
  y_begin = std::max(y_begin, rect.y0);
  y_end = std::min(y_end, rect.y1);
  RasterFragment frag;
  frag.depth = depth;
  for (uint32_t y = y_begin; y < y_end; ++y) {
    frag.y = y;
    frag.v = static_cast<float>(y) + 0.5f;
    for (uint32_t x = rect.x0; x < rect.x1; ++x) {
      frag.x = x;
      frag.u = static_cast<float>(x) + 0.5f;
      emit(frag);
    }
  }
}

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_RASTERIZER_H_
