#ifndef GPUDB_GPU_RASTERIZER_H_
#define GPUDB_GPU_RASTERIZER_H_

#include <cstdint>
#include <functional>

#include "src/gpu/geometry.h"

namespace gpudb {
namespace gpu {

/// \brief Scissor rectangle in window coordinates, half-open:
/// pixels with x in [x0, x1) and y in [y0, y1) pass.
struct ScissorRect {
  uint32_t x0 = 0, y0 = 0;
  uint32_t x1 = 0, y1 = 0;

  bool Contains(uint32_t x, uint32_t y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
  uint64_t Area() const {
    return uint64_t{x1 - x0} * (y1 - y0);
  }
};

/// \brief A fragment emitted by the setup/rasterization stage: pixel
/// coordinates plus interpolated depth and texture coordinates.
struct RasterFragment {
  uint32_t x = 0, y = 0;
  float depth = 0;
  float u = 0, v = 0;
};

using FragmentEmitter = std::function<void(const RasterFragment&)>;

/// \brief The setup engine + rasterizer (paper Section 3.1: "Transformed
/// vertex data is streamed to the setup engine which generates slope and
/// initial value information ... used during rasterization for constructing
/// fragments at each pixel location covered by the primitive").
///
/// Rasterizes one triangle given screen-space vertices: edge-function
/// coverage with the top-left fill rule (shared edges covered exactly once),
/// pixel centers at (x+0.5, y+0.5), barycentric interpolation of depth and
/// texcoords. Fragments outside the scissor rectangle are culled before the
/// emitter is called. Winding is irrelevant (no face culling).
void RasterizeTriangle(const ScreenVertex& a, const ScreenVertex& b,
                       const ScreenVertex& c, const ScissorRect& scissor,
                       const FragmentEmitter& emit);

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_RASTERIZER_H_
