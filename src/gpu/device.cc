#include "src/gpu/device.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "src/common/metrics.h"
#include "src/common/profile.h"
#include "src/common/trace.h"

namespace gpudb {
namespace gpu {

// Force the per-fragment stages into the span/raster loops: at -O2 the
// compiler judges them too large to inline on its own, which leaves an
// opaque call (and per-call RenderState reloads) on a path executed a
// million times per pass.
#if defined(__GNUC__)
#define GPUDB_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define GPUDB_ALWAYS_INLINE inline
#endif

namespace {

/// Device-level hardware metrics (process-wide, across all Device
/// instances). References are cached so the hot paths pay one map lookup
/// per process, not per pass.
struct DeviceMetrics {
  MetricCounter& passes = MetricsRegistry::Global().counter("gpu.passes");
  MetricCounter& fragments =
      MetricsRegistry::Global().counter("gpu.fragments_generated");
  MetricCounter& bytes_uploaded =
      MetricsRegistry::Global().counter("gpu.bytes_uploaded");
  MetricCounter& bytes_read_back =
      MetricsRegistry::Global().counter("gpu.bytes_read_back");
  MetricCounter& occlusion_readbacks =
      MetricsRegistry::Global().counter("gpu.occlusion_readbacks");
  MetricCounter& texture_swap_ins =
      MetricsRegistry::Global().counter("gpu.texture_swap_ins");
  MetricCounter& bytes_swapped =
      MetricsRegistry::Global().counter("gpu.bytes_swapped");
  // Deep-profile counters; only advance while the Profiler is enabled.
  MetricCounter& alpha_killed =
      MetricsRegistry::Global().counter("gpu.alpha_killed");
  MetricCounter& stencil_killed =
      MetricsRegistry::Global().counter("gpu.stencil_killed");
  MetricCounter& depth_killed =
      MetricsRegistry::Global().counter("gpu.depth_killed");
  MetricCounter& plane_bytes_read =
      MetricsRegistry::Global().counter("gpu.plane_bytes_read");
  MetricCounter& plane_bytes_written =
      MetricsRegistry::Global().counter("gpu.plane_bytes_written");
  // Depth-plane cache (DESIGN.md §14).
  MetricCounter& plancache_hits =
      MetricsRegistry::Global().counter("plancache.hits");
  MetricCounter& plancache_misses =
      MetricsRegistry::Global().counter("plancache.misses");
  MetricCounter& plancache_evictions =
      MetricsRegistry::Global().counter("plancache.evictions");

  static DeviceMetrics& Get() {
    static DeviceMetrics* m = new DeviceMetrics();
    return *m;
  }
};

}  // namespace

Device::Device(uint32_t width, uint32_t height, int depth_bits)
    : fb_(width, height, depth_bits),
      viewport_pixels_(uint64_t{width} * height),
      worker_threads_(ThreadPool::DefaultThreads()) {}

Status Device::SetWorkerThreads(int n) {
  if (n < 1) {
    return Status::InvalidArgument("worker thread count must be >= 1, got " +
                                   std::to_string(n));
  }
  if (n != worker_threads_) {
    worker_threads_ = n;
    pool_.reset();  // re-created lazily at the right size
  }
  return Status::OK();
}

ThreadPool* Device::EnsurePool() {
  if (pool_ == nullptr || pool_->size() != worker_threads_) {
    pool_ = std::make_unique<ThreadPool>(worker_threads_);
  }
  return pool_.get();
}

Result<TextureId> Device::UploadTexture(Texture texture) {
  const uint64_t bytes = texture.byte_size();
  GPUDB_RETURN_NOT_OK(injector_.OnAllocation(bytes));
  textures_.emplace_back(std::move(texture));
  const auto id = static_cast<TextureId>(textures_.size() - 1);
  // The initial upload makes the texture resident (evicting others if the
  // working set exceeds the card). A texture that cannot fit at all fails
  // before any bus transfer is charged. EnsureResident knows this first
  // residency is not a swap-in, so the transfer is charged here as the AGP
  // upload it is.
  GPUDB_RETURN_NOT_OK(EnsureResident(id));
  counters_.bytes_uploaded += bytes;
  DeviceMetrics::Get().bytes_uploaded.Add(bytes);
  TraceSpan span("gpu.upload_texture");
  span.AddTag("bytes", bytes);
  span.AddTag("texture", static_cast<double>(id));
  return id;
}

Status Device::SetVideoMemoryBudget(uint64_t bytes) {
  if (bytes == 0) {
    return Status::InvalidArgument("video memory budget must be positive");
  }
  video_memory_budget_ = bytes;
  // Evict immediately if the resident set no longer fits. Cached depth
  // planes share the budget at strictly lower priority than textures, so
  // they go first.
  while (resident_bytes_ + plane_cache_.bytes() > video_memory_budget_ &&
         plane_cache_.EvictLru()) {
    DeviceMetrics::Get().plancache_evictions.Increment();
  }
  for (TextureSlot& slot : textures_) {
    if (resident_bytes_ <= video_memory_budget_) break;
    if (slot.resident) {
      slot.resident = false;
      resident_bytes_ -= slot.data.byte_size();
    }
  }
  if (resident_bytes_ > video_memory_budget_) {
    return Status::Internal("resident accounting out of sync");
  }
  return Status::OK();
}

Status Device::EnsureResident(TextureId id) {
  TextureSlot& slot = textures_[id];
  slot.last_use = ++lru_clock_;
  if (slot.resident) return Status::OK();
  const uint64_t bytes = slot.data.byte_size();
  if (bytes > video_memory_budget_) {
    return Status::ResourceExhausted(
        "texture of " + std::to_string(bytes) +
        " bytes exceeds the video memory budget of " +
        std::to_string(video_memory_budget_));
  }
  // Cached depth planes yield before any texture is considered: a texture
  // the query needs now outranks an optimization for a future query.
  while (resident_bytes_ + plane_cache_.bytes() + bytes >
             video_memory_budget_ &&
         plane_cache_.EvictLru()) {
    DeviceMetrics::Get().plancache_evictions.Increment();
  }
  // Evict least-recently-used resident textures (never the bound units)
  // until the texture fits.
  while (resident_bytes_ + bytes > video_memory_budget_) {
    TextureId victim = -1;
    uint64_t oldest = ~uint64_t{0};
    for (size_t i = 0; i < textures_.size(); ++i) {
      if (!textures_[i].resident) continue;
      bool bound = static_cast<TextureId>(i) == id;
      for (TextureId unit : bound_units_) {
        bound = bound || unit == static_cast<TextureId>(i);
      }
      if (bound) continue;
      if (textures_[i].last_use < oldest) {
        oldest = textures_[i].last_use;
        victim = static_cast<TextureId>(i);
      }
    }
    if (victim < 0) {
      return Status::ResourceExhausted(
          "cannot evict enough textures (all bound) to fit " +
          std::to_string(bytes) + " bytes");
    }
    textures_[victim].resident = false;
    resident_bytes_ -= textures_[victim].data.byte_size();
  }
  slot.resident = true;
  resident_bytes_ += bytes;
  // Only a re-residency is a swap-in: the first time a texture becomes
  // resident is its creation/upload, which is charged by the caller.
  if (slot.ever_resident) {
    ++counters_.texture_swap_ins;
    counters_.bytes_swapped += bytes;
    DeviceMetrics::Get().texture_swap_ins.Increment();
    DeviceMetrics::Get().bytes_swapped.Add(bytes);
    TraceSpan span("gpu.texture_swap_in");
    span.AddTag("bytes", bytes);
    span.AddTag("texture", static_cast<double>(id));
  }
  slot.ever_resident = true;
  return Status::OK();
}

Result<TextureId> Device::CreateTexture(uint32_t width, uint32_t height,
                                        int channels) {
  GPUDB_ASSIGN_OR_RETURN(Texture tex, Texture::Make(width, height, channels));
  GPUDB_RETURN_NOT_OK(injector_.OnAllocation(tex.byte_size()));
  textures_.emplace_back(std::move(tex));
  const auto id = static_cast<TextureId>(textures_.size() - 1);
  // Allocation is on-card (no bus transfer), but it occupies the budget;
  // EnsureResident charges nothing for a first residency.
  GPUDB_RETURN_NOT_OK(EnsureResident(id));
  return id;
}

Status Device::CopyColorToTexture(TextureId dst) {
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  GPUDB_RETURN_NOT_OK(injector_.OnPass());
  if (dst < 0 || static_cast<size_t>(dst) >= textures_.size()) {
    return Status::InvalidArgument("CopyColorToTexture: invalid texture id " +
                                   std::to_string(dst));
  }
  GPUDB_RETURN_NOT_OK(EnsureResident(dst));
  Texture& tex = textures_[dst].data;
  if (tex.total_texels() < viewport_pixels_) {
    return Status::InvalidArgument(
        "CopyColorToTexture: destination texture smaller than viewport");
  }
  for (uint64_t i = 0; i < viewport_pixels_; ++i) {
    const float* rgba = fb_.color(i);
    for (int c = 0; c < tex.channels(); ++c) {
      tex.Set(i, c, rgba[c]);
    }
  }
  // Charged as an on-card one-cycle-per-texel pass (glCopyTexSubImage2D).
  PassRecord pass;
  pass.label = "copy-color-to-texture";
  pass.fragments = viewport_pixels_;
  pass.fp_instructions = 1;
  pass.fragments_passed = viewport_pixels_;
  pass.profiled = Profiler::Global().enabled();
  if (pass.profiled) {
    // The copy bypasses the fragment tests; its plane traffic is one full
    // read of the color plane (the test-chain model in
    // ApplyPlaneTrafficModel does not apply).
    pass.prof.plane_bytes_read = viewport_pixels_ * 16;
  }
  return FinishPass(std::move(pass));
}

Result<bool> Device::RestoreCachedDepthPlane(const PlaneKey& key) {
  const std::vector<uint32_t>* plane = plane_cache_.Lookup(key);
  if (plane == nullptr) {
    ++counters_.plane_cache_misses;
    DeviceMetrics::Get().plancache_misses.Increment();
    return false;
  }
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  GPUDB_RETURN_NOT_OK(injector_.OnPass());
  const uint64_t n = plane->size();
  if (n > fb_.pixel_count()) {
    return Status::Internal(
        "cached depth plane larger than the framebuffer it came from");
  }
  std::copy(plane->begin(), plane->end(), fb_.depth_data());
  ++counters_.plane_cache_hits;
  DeviceMetrics::Get().plancache_hits.Increment();
  // The on-card blit that stands in for CopyToDepth: one cycle per texel,
  // every texel "passes" and lands in the depth plane. No fragment tests
  // run, so the plane-traffic model does not apply; the traffic is exactly
  // one full write of the restored depth range.
  PassRecord pass;
  pass.label = "plane-restore";
  pass.fragments = n;
  pass.fp_instructions = 1;
  pass.fragments_passed = n;
  pass.depth_writes = n;
  pass.cache_hit = true;
  pass.profiled = Profiler::Global().enabled();
  if (pass.profiled) pass.prof.plane_bytes_written = n * 4;
  GPUDB_RETURN_NOT_OK(FinishPass(std::move(pass)));
  return true;
}

Status Device::CacheDepthPlane(const PlaneKey& key) {
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  const uint64_t n = key.viewport_pixels;
  if (n == 0 || n > fb_.pixel_count()) {
    return Status::InvalidArgument(
        "CacheDepthPlane: key covers " + std::to_string(n) +
        " pixels, framebuffer has " + std::to_string(fb_.pixel_count()));
  }
  const uint64_t bytes = n * sizeof(uint32_t);
  // Planes never displace textures: if the plane cannot fit beside the
  // resident set even with the whole cache empty, skip caching silently --
  // the query already has its answer, the copy just stays un-amortized.
  if (resident_bytes_ + bytes > video_memory_budget_) return Status::OK();
  while (resident_bytes_ + plane_cache_.bytes() + bytes >
         video_memory_budget_) {
    if (!plane_cache_.EvictLru()) return Status::OK();
    DeviceMetrics::Get().plancache_evictions.Increment();
  }
  GPUDB_RETURN_NOT_OK(injector_.OnPass());
  std::vector<uint32_t> plane(fb_.depth_data(), fb_.depth_data() + n);
  // The snapshot is an on-card depth-plane read (glCopyTexSubImage2D of the
  // depth attachment, in 2004 terms): one cycle per texel, one full read.
  PassRecord pass;
  pass.label = "plane-snapshot";
  pass.fragments = n;
  pass.fp_instructions = 1;
  pass.fragments_passed = n;
  pass.profiled = Profiler::Global().enabled();
  if (pass.profiled) pass.prof.plane_bytes_read = n * 4;
  GPUDB_RETURN_NOT_OK(FinishPass(std::move(pass)));
  plane_cache_.Insert(key, std::move(plane));
  return Status::OK();
}

void Device::InvalidateCachedPlanes(std::string_view table) {
  plane_cache_.InvalidateTable(table);
}

Result<std::vector<float>> Device::ReadTexture(TextureId id, int channel) {
  if (id < 0 || static_cast<size_t>(id) >= textures_.size()) {
    return Status::InvalidArgument("ReadTexture: invalid texture id " +
                                   std::to_string(id));
  }
  const Texture& tex = textures_[id].data;
  if (channel < 0 || channel >= tex.channels()) {
    return Status::InvalidArgument("ReadTexture: invalid channel " +
                                   std::to_string(channel));
  }
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  GPUDB_RETURN_NOT_OK(injector_.OnReadback("texture"));
  counters_.bytes_read_back += tex.total_texels() * 4;
  DeviceMetrics::Get().bytes_read_back.Add(tex.total_texels() * 4);
  std::vector<float> out(tex.total_texels());
  for (uint64_t i = 0; i < tex.total_texels(); ++i) {
    out[i] = tex.At(i, channel);
  }
  return out;
}

Status Device::UpdateTexture(TextureId id, uint64_t offset,
                             const std::vector<float>& values, int channel) {
  if (id < 0 || static_cast<size_t>(id) >= textures_.size()) {
    return Status::InvalidArgument("UpdateTexture: invalid texture id " +
                                   std::to_string(id));
  }
  GPUDB_RETURN_NOT_OK(EnsureResident(id));
  Texture& tex = textures_[id].data;
  if (channel < 0 || channel >= tex.channels()) {
    return Status::InvalidArgument("UpdateTexture: invalid channel " +
                                   std::to_string(channel));
  }
  if (offset + values.size() > tex.total_texels()) {
    return Status::OutOfRange("UpdateTexture: write of " +
                              std::to_string(values.size()) +
                              " texels at offset " + std::to_string(offset) +
                              " exceeds texture");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    tex.Set(offset + i, channel, values[i]);
  }
  counters_.bytes_uploaded += values.size() * 4;
  DeviceMetrics::Get().bytes_uploaded.Add(values.size() * 4);
  return Status::OK();
}

Status Device::BindTexture(TextureId id) { return BindTextureUnit(0, id); }

Status Device::BindTextureUnit(int unit, TextureId id) {
  if (unit < 0 || unit >= kTextureUnits) {
    return Status::InvalidArgument("texture unit must be in [0,3], got " +
                                   std::to_string(unit));
  }
  if (id < 0 || static_cast<size_t>(id) >= textures_.size()) {
    return Status::InvalidArgument("BindTexture: invalid texture id " +
                                   std::to_string(id));
  }
  bound_units_[unit] = id;
  return Status::OK();
}

Status Device::UnbindTextureUnit(int unit) {
  if (unit < 0 || unit >= kTextureUnits) {
    return Status::InvalidArgument("texture unit must be in [0,3], got " +
                                   std::to_string(unit));
  }
  bound_units_[unit] = -1;
  return Status::OK();
}

void Device::SetAlphaTest(bool enabled, CompareOp func, float ref) {
  state_.alpha_test_enabled = enabled;
  state_.alpha_func = func;
  state_.alpha_ref = ref;
}

void Device::SetStencilTest(bool enabled, CompareOp func, uint8_t ref,
                            uint8_t value_mask) {
  state_.stencil_test_enabled = enabled;
  state_.stencil_func = func;
  state_.stencil_ref = ref;
  state_.stencil_value_mask = value_mask;
}

void Device::SetStencilOp(StencilOp fail, StencilOp zfail, StencilOp zpass) {
  state_.stencil_fail_op = fail;
  state_.stencil_zfail_op = zfail;
  state_.stencil_zpass_op = zpass;
}

void Device::SetDepthTest(bool enabled, CompareOp func) {
  state_.depth_test_enabled = enabled;
  state_.depth_func = func;
}

void Device::SetDepthWriteMask(bool enabled) {
  state_.depth_write_mask = enabled;
}

void Device::SetColorWriteMask(bool enabled) {
  state_.color_write_mask = enabled;
}

void Device::SetDepthBoundsTest(bool enabled, float zmin, float zmax) {
  state_.depth_bounds_test_enabled = enabled;
  state_.depth_bounds_min = fb_.Quantize(zmin);
  state_.depth_bounds_max = fb_.Quantize(zmax);
}

Status Device::SetViewport(uint64_t pixels) {
  if (pixels == 0 || pixels > fb_.pixel_count()) {
    return Status::OutOfRange("viewport of " + std::to_string(pixels) +
                              " pixels exceeds framebuffer of " +
                              std::to_string(fb_.pixel_count()));
  }
  viewport_pixels_ = pixels;
  return Status::OK();
}

void Device::ClearColor(float r, float g, float b, float a) {
  fb_.ClearColor(r, g, b, a);
}

void Device::ClearDepth(float d) { fb_.ClearDepth(d); }

void Device::ClearStencil(uint8_t s) { fb_.ClearStencil(s); }

Status Device::RenderQuad(float depth) {
  return RenderInternal(depth, /*textured=*/false);
}

Status Device::RenderTexturedQuad() {
  if (bound_units_[0] < 0) {
    return Status::FailedPrecondition(
        "RenderTexturedQuad requires a bound texture");
  }
  return RenderInternal(/*quad_depth=*/0.0f, /*textured=*/true);
}

ScreenVertex Device::ApplyVertexStage(const Vertex& v) const {
  ScreenVertex out;
  if (window_space_vertices_) {
    // Default host setup: positions already in window coordinates with
    // z = window depth (the orthographic screen-aligned configuration every
    // algorithm in the paper renders under).
    out.x = v.position.x;
    out.y = v.position.y;
    out.depth = v.position.z;
  } else {
    const Vec4 clip = transform_.Transform(v.position);
    const float w = clip.w != 0.0f ? clip.w : 1.0f;
    // Viewport transform over the full framebuffer, depth range [0,1].
    out.x = (clip.x / w + 1.0f) * 0.5f * static_cast<float>(fb_.width());
    out.y = (clip.y / w + 1.0f) * 0.5f * static_cast<float>(fb_.height());
    out.depth = (clip.z / w + 1.0f) * 0.5f;
  }
  out.u = v.u;
  out.v = v.v;
  return out;
}

void Device::SetTransform(const Mat4& mvp) {
  transform_ = mvp;
  window_space_vertices_ = false;
}

void Device::ResetTransform() {
  transform_ = Mat4::Identity();
  window_space_vertices_ = true;
}

GPUDB_ALWAYS_INLINE
void Device::ProcessFragment(const RasterFragment& frag, PassContext* ctx) {
  const RenderState& rs = state_;
  const uint64_t i = uint64_t{frag.y} * fb_.width() + frag.x;
  ++ctx->pass->fragments;

  // --- Fragment program (pixel processing engine) ----------------------
  FragmentOutput out;
  out.depth = frag.depth;
  if (ctx->program != nullptr) {
    FragmentInput in;
    in.texel_index = i;
    in.frag_depth = frag.depth;
    in.tex0 = ctx->units[0];
    in.tex1 = ctx->units[1];
    in.tex2 = ctx->units[2];
    in.tex3 = ctx->units[3];
    ctx->program->Execute(in, &out);
    if (out.discarded) {  // KILL: skips all later stages.
      if (ctx->profile) ++ctx->pass->prof.alpha_killed;
      return;
    }
  } else if (ctx->flat_depth) {
    // Fixed-function quad: depth quantization and the alpha test were
    // resolved once per pass (same outcome for every fragment).
    if (ctx->alpha_fail) {
      if (ctx->profile) ++ctx->pass->prof.alpha_killed;
      return;
    }
    ProcessTestedFragment(i, ctx->flat_depth_q, out.color, ctx);
    return;
  }
  const uint32_t frag_depth_q =
      out.depth_written ? fb_.Quantize(out.depth) : fb_.Quantize(frag.depth);

  // --- Alpha test -------------------------------------------------------
  if (rs.alpha_test_enabled &&
      !EvalCompare(rs.alpha_func, out.color[3], rs.alpha_ref)) {
    // Alpha failures do not reach the stencil stage.
    if (ctx->profile) ++ctx->pass->prof.alpha_killed;
    return;
  }

  ProcessTestedFragment(i, frag_depth_q, out.color, ctx);
}

GPUDB_ALWAYS_INLINE
void Device::ProcessTestedFragment(uint64_t i, uint32_t frag_depth_q,
                                   const std::array<float, 4>& color,
                                   PassContext* ctx) {
  const RenderState& rs = state_;

  // --- Stencil test -------------------------------------------------------
  const uint8_t stored_stencil = fb_.stencil(i);
  auto update_stencil = [&](StencilOp op) {
    const uint8_t result = ApplyStencilOp(op, stored_stencil, rs.stencil_ref);
    const uint8_t merged =
        static_cast<uint8_t>((stored_stencil & ~rs.stencil_write_mask) |
                             (result & rs.stencil_write_mask));
    if (merged != stored_stencil) {
      fb_.set_stencil(i, merged);
      ++ctx->pass->stencil_updates;
    }
  };
  if (rs.stencil_test_enabled) {
    // GL semantics: (ref & mask) FUNC (stored & mask).
    const auto ref =
        static_cast<uint8_t>(rs.stencil_ref & rs.stencil_value_mask);
    const auto val =
        static_cast<uint8_t>(stored_stencil & rs.stencil_value_mask);
    if (!EvalCompare(rs.stencil_func, ref, val)) {
      update_stencil(rs.stencil_fail_op);  // Op1
      if (ctx->profile) ++ctx->pass->prof.stencil_killed;
      return;
    }
  }

  // --- Depth bounds test (GL_EXT_depth_bounds_test) -----------------------
  // Tests the depth value stored in the framebuffer, not the fragment's.
  // A bounds failure counts as a depth-test failure (Op2).
  bool depth_pass = true;
  if (rs.depth_bounds_test_enabled) {
    const uint32_t stored_depth = fb_.depth(i);
    depth_pass = stored_depth >= rs.depth_bounds_min &&
                 stored_depth <= rs.depth_bounds_max;
  }

  // --- Depth test ----------------------------------------------------------
  if (depth_pass && rs.depth_test_enabled) {
    depth_pass = EvalCompare(rs.depth_func, frag_depth_q, fb_.depth(i));
  }

  if (!depth_pass) {
    if (rs.stencil_test_enabled) update_stencil(rs.stencil_zfail_op);  // Op2
    return;
  }
  if (rs.stencil_test_enabled) update_stencil(rs.stencil_zpass_op);  // Op3

  // --- Fragment passed: count and write -----------------------------------
  ++ctx->pass->fragments_passed;
  if (ctx->occlusion != nullptr) ++*ctx->occlusion;

  // As in OpenGL, depth writes only happen when the depth test is enabled
  // (CopyToDepth therefore enables the test with func ALWAYS).
  if (rs.depth_test_enabled && rs.depth_write_mask) {
    if (fb_.depth(i) != frag_depth_q) {
      fb_.set_depth(i, frag_depth_q);
    }
    ++ctx->pass->depth_writes;
  }
  if (rs.color_write_mask) {
    fb_.set_color(i, color);
  }
}

namespace {

/// Per-band output of a specialized quad-row kernel, reduced into the
/// band's PassContext by the caller.
struct QuadKernelOut {
  uint64_t fragments = 0;
  uint64_t passed = 0;
  uint64_t depth_writes = 0;
  uint64_t stencil_updates = 0;
  uint64_t occlusion = 0;
  // Filled only by the kProfile instantiation; zero otherwise.
  uint64_t alpha_killed = 0;
  uint64_t stencil_killed = 0;
};

/// Shared body of the specialized quad-row kernels: the exact
/// alpha/stencil/depth-bounds/depth chain and buffer writes of
/// ProcessFragment/ProcessTestedFragment for a screen-aligned quad whose
/// per-fragment color is FragmentOutput's default and whose alpha test was
/// resolved once per pass, with the fragment depth supplied by
/// `depth_q_of(i)` (a constant for fixed-function quads, a texel fetch for
/// depth-copy programs).
///
/// Everything the loop reads lives in locals: the stencil plane is
/// uint8_t, and char-typed stores may alias any object in the abstract
/// machine, so a loop reading RenderState or the plane pointers through
/// members would reload them after every stencil write. Locals whose
/// address never escapes cannot alias and stay in registers.
///
/// `kProfile` selects the gpuprof instantiation: the extra kill counters
/// are `if constexpr`-guarded, so the default <false> kernel -- the one
/// every non-profiled pass runs -- compiles to exactly the pre-gpuprof
/// loop (counters off = no-ops, not branches).
template <bool kProfile, typename DepthQFn>
void QuadRowKernel(const RenderState& rs_in, FrameBuffer* fb,
                   const ScissorRect& rect, uint32_t y_begin, uint32_t y_end,
                   bool alpha_fail, bool count_occlusion, DepthQFn depth_q_of,
                   QuadKernelOut* result) {
  const RenderState rs = rs_in;
  const uint32_t w = fb->width();
  uint32_t* const depth = fb->depth_data();
  uint8_t* const stencil = fb->stencil_data();
  float* const color = fb->color_data();
  // FragmentOutput's default color: what these quad passes write.
  const std::array<float, 4> out_color = {0, 0, 0, 1};
  const auto ref_masked =
      static_cast<uint8_t>(rs.stencil_ref & rs.stencil_value_mask);

  uint64_t fragments = 0;
  uint64_t passed = 0;
  uint64_t depth_writes = 0;
  uint64_t stencil_updates = 0;
  uint64_t occl = 0;
  uint64_t stencil_killed = 0;

  for (uint32_t y = y_begin; y < y_end; ++y) {
    uint64_t i = uint64_t{y} * w + rect.x0;
    for (uint32_t x = rect.x0; x < rect.x1; ++x, ++i) {
      ++fragments;
      if (alpha_fail) continue;

      const uint8_t stored_stencil = stencil[i];
      const auto update_stencil = [&](StencilOp op) {
        const uint8_t result8 =
            ApplyStencilOp(op, stored_stencil, rs.stencil_ref);
        const uint8_t merged =
            static_cast<uint8_t>((stored_stencil & ~rs.stencil_write_mask) |
                                 (result8 & rs.stencil_write_mask));
        if (merged != stored_stencil) {
          stencil[i] = merged;
          ++stencil_updates;
        }
      };
      if (rs.stencil_test_enabled) {
        const auto val =
            static_cast<uint8_t>(stored_stencil & rs.stencil_value_mask);
        if (!EvalCompare(rs.stencil_func, ref_masked, val)) {
          update_stencil(rs.stencil_fail_op);  // Op1
          if constexpr (kProfile) ++stencil_killed;
          continue;
        }
      }

      const uint32_t frag_depth_q = depth_q_of(i);

      bool depth_pass = true;
      if (rs.depth_bounds_test_enabled) {
        const uint32_t stored_depth = depth[i];
        depth_pass = stored_depth >= rs.depth_bounds_min &&
                     stored_depth <= rs.depth_bounds_max;
      }
      if (depth_pass && rs.depth_test_enabled) {
        depth_pass = EvalCompare(rs.depth_func, frag_depth_q, depth[i]);
      }
      if (!depth_pass) {
        if (rs.stencil_test_enabled) update_stencil(rs.stencil_zfail_op);
        continue;
      }
      if (rs.stencil_test_enabled) update_stencil(rs.stencil_zpass_op);

      ++passed;
      if (count_occlusion) ++occl;
      if (rs.depth_test_enabled && rs.depth_write_mask) {
        if (depth[i] != frag_depth_q) depth[i] = frag_depth_q;
        ++depth_writes;
      }
      if (rs.color_write_mask) {
        for (int c = 0; c < 4; ++c) color[i * 4 + c] = out_color[c];
      }
    }
  }

  result->fragments = fragments;
  result->passed = passed;
  result->depth_writes = depth_writes;
  result->stencil_updates = stencil_updates;
  result->occlusion = occl;
  if constexpr (kProfile) {
    // A pre-resolved alpha failure kills every fragment of the quad.
    result->alpha_killed = alpha_fail ? fragments : 0;
    result->stencil_killed = stencil_killed;
  } else {
    (void)stencil_killed;
  }
}

/// Whether a pass can run the branchless TestCountRowKernel below instead
/// of the general QuadRowKernel: nothing but the stencil plane and the
/// counters may change (depth and color writes off, bounds test off), the
/// fragment must reach the depth test whenever the stencil lets it through
/// (no alpha kill), and a failing fragment must leave its stencil alone
/// (Keep on both fail paths). This is the shape of every comparison,
/// selection, chain, and counting quad the operators issue, which makes it
/// the hottest loop in the simulator. Profiled passes stay eligible: the
/// only per-fragment gpuprof tallies are the kill counts, alpha_killed is
/// structurally zero here (no alpha kill) and stencil_killed is the
/// stencil-fail count the kernels produce on demand.
bool EligibleForTestCount(const RenderState& rs, bool alpha_fail) {
  return !alpha_fail && !rs.depth_bounds_test_enabled &&
         rs.depth_test_enabled && !rs.depth_write_mask &&
         !rs.color_write_mask &&
         (!rs.stencil_test_enabled ||
          (rs.stencil_fail_op == StencilOp::kKeep &&
           rs.stencil_zfail_op == StencilOp::kKeep));
}

/// Branchless body for EligibleForTestCount passes. Semantically identical
/// to QuadRowKernel under that configuration -- same counters, same stencil
/// results -- but the data-dependent test outcomes feed arithmetic selects
/// instead of branches: at the 40-60% selectivities the paper's queries
/// run, the general loop's depth-test branch mispredicts almost every other
/// fragment, which is what made a fixed-function comparison quad slower
/// than the 3-instruction copy pass it follows.
template <typename DepthQFn>
void TestCountRowKernel(const RenderState& rs_in, FrameBuffer* fb,
                        const ScissorRect& rect, uint32_t y_begin,
                        uint32_t y_end, bool count_occlusion, bool profile,
                        DepthQFn depth_q_of, QuadKernelOut* result) {
  const RenderState rs = rs_in;
  const uint32_t w = fb->width();
  const uint32_t* const depth = fb->depth_data();
  uint8_t* const stencil = fb->stencil_data();
  const bool stest = rs.stencil_test_enabled;
  const auto ref_masked =
      static_cast<uint8_t>(rs.stencil_ref & rs.stencil_value_mask);

  // The compare op is loop-invariant, so reduce it to a truth table over
  // the three orderings: dp = (lt & m_lt) | (eq & m_eq) | (gt & m_gt).
  const CompareOp df = rs.depth_func;
  const uint8_t m_lt =
      (df == CompareOp::kLess || df == CompareOp::kLessEqual ||
       df == CompareOp::kNotEqual || df == CompareOp::kAlways)
          ? 1
          : 0;
  const uint8_t m_eq =
      (df == CompareOp::kEqual || df == CompareOp::kLessEqual ||
       df == CompareOp::kGreaterEqual || df == CompareOp::kAlways)
          ? 1
          : 0;
  const uint8_t m_gt =
      (df == CompareOp::kGreater || df == CompareOp::kGreaterEqual ||
       df == CompareOp::kNotEqual || df == CompareOp::kAlways)
          ? 1
          : 0;

  // The stencil pipeline -- func, zpass op, write mask -- only ever sees the
  // stored byte as its varying input, so the whole thing collapses into two
  // 256-entry tables computed once per pass.
  uint8_t sok_of[256];
  uint8_t pass_value_of[256];
  if (stest) {
    for (int s = 0; s < 256; ++s) {
      const auto stored = static_cast<uint8_t>(s);
      sok_of[s] = EvalCompare(
                      rs.stencil_func, ref_masked,
                      static_cast<uint8_t>(stored & rs.stencil_value_mask))
                      ? 1
                      : 0;
      const uint8_t res =
          ApplyStencilOp(rs.stencil_zpass_op, stored, rs.stencil_ref);
      pass_value_of[s] =
          static_cast<uint8_t>((stored & ~rs.stencil_write_mask) |
                               (res & rs.stencil_write_mask));
    }
  }

  // The chain passes the planner emits (DESIGN.md §14) test the stencil
  // with kEqual under full masks, so a passing fragment always holds
  // exactly `ref` and its replacement value is one constant -- the table
  // lookups drop out of the loop entirely.
  const bool exact_equal = stest && rs.stencil_func == CompareOp::kEqual &&
                           rs.stencil_value_mask == 0xff;
  const uint8_t eq_next = exact_equal ? pass_value_of[ref_masked] : 0;

  uint64_t fragments = 0;
  uint64_t passed = 0;
  uint64_t stencil_updates = 0;
  uint64_t stencil_ok = 0;  // -> stencil_killed when profiling
  for (uint32_t y = y_begin; y < y_end; ++y) {
    uint64_t i = uint64_t{y} * w + rect.x0;
    if (exact_equal) {
      for (uint32_t x = rect.x0; x < rect.x1; ++x, ++i) {
        const uint8_t stored = stencil[i];
        const uint32_t q = depth_q_of(i);
        const uint32_t d = depth[i];
        const uint8_t dp = static_cast<uint8_t>((m_lt & (q < d ? 1 : 0)) |
                                                (m_eq & (q == d ? 1 : 0)) |
                                                (m_gt & (q > d ? 1 : 0)));
        const uint8_t sok = stored == ref_masked ? 1 : 0;
        const uint8_t pass = static_cast<uint8_t>(sok & dp);
        stencil_ok += sok;
        const uint8_t next = pass != 0 ? eq_next : stored;
        stencil[i] = next;
        stencil_updates += next != stored ? 1 : 0;
        passed += pass;
      }
    } else if (stest) {
      for (uint32_t x = rect.x0; x < rect.x1; ++x, ++i) {
        const uint8_t stored = stencil[i];
        const uint32_t q = depth_q_of(i);
        const uint32_t d = depth[i];
        const uint8_t dp = static_cast<uint8_t>((m_lt & (q < d ? 1 : 0)) |
                                                (m_eq & (q == d ? 1 : 0)) |
                                                (m_gt & (q > d ? 1 : 0)));
        const uint8_t sok = sok_of[stored];
        const uint8_t pass = static_cast<uint8_t>(sok & dp);
        stencil_ok += sok;
        const uint8_t next = pass != 0 ? pass_value_of[stored] : stored;
        stencil[i] = next;
        stencil_updates += next != stored ? 1 : 0;
        passed += pass;
      }
    } else {
      for (uint32_t x = rect.x0; x < rect.x1; ++x, ++i) {
        const uint32_t q = depth_q_of(i);
        const uint32_t d = depth[i];
        passed += (m_lt & (q < d ? 1 : 0)) | (m_eq & (q == d ? 1 : 0)) |
                  (m_gt & (q > d ? 1 : 0));
      }
    }
    fragments += rect.x1 - rect.x0;
  }
  result->fragments = fragments;
  result->passed = passed;
  result->stencil_updates = stencil_updates;
  result->occlusion = count_occlusion ? passed : 0;
  // Same ledger the kProfile QuadRowKernel keeps: alpha_killed is zero by
  // eligibility (no alpha kill), stencil_killed is the stencil-fail count.
  if (profile && stest) result->stencil_killed = fragments - stencil_ok;
}

#if defined(__SSE2__)
/// SSE2 lane of TestCountRowKernel for flat quads (one depth value for the
/// whole primitive) whose stencil state is either off or the planner's
/// exact-equal chain shape. Sixteen fragments per step; the scalar kernel
/// handles the row remainder and every other configuration. Counter and
/// stencil results are bit-identical to the scalar loop.
bool TestCountRowsFlatSimd(const RenderState& rs, FrameBuffer* fb,
                           const ScissorRect& rect, uint32_t y_begin,
                           uint32_t y_end, bool count_occlusion, bool profile,
                           uint32_t q, QuadKernelOut* result) {
  const bool stest = rs.stencil_test_enabled;
  const bool exact_equal = stest && rs.stencil_func == CompareOp::kEqual &&
                           rs.stencil_value_mask == 0xff;
  if (stest && !exact_equal) return false;

  const CompareOp df = rs.depth_func;
  const bool w_lt = df == CompareOp::kLess || df == CompareOp::kLessEqual ||
                    df == CompareOp::kNotEqual || df == CompareOp::kAlways;
  const bool w_eq = df == CompareOp::kEqual || df == CompareOp::kLessEqual ||
                    df == CompareOp::kGreaterEqual || df == CompareOp::kAlways;
  const bool w_gt = df == CompareOp::kGreater ||
                    df == CompareOp::kGreaterEqual ||
                    df == CompareOp::kNotEqual || df == CompareOp::kAlways;

  const uint32_t w = fb->width();
  const uint32_t* const depth = fb->depth_data();
  uint8_t* const stencil = fb->stencil_data();
  const auto ref =
      static_cast<uint8_t>(rs.stencil_ref & rs.stencil_value_mask);
  uint8_t eq_next = 0;
  if (exact_equal) {
    const uint8_t res = ApplyStencilOp(rs.stencil_zpass_op, ref,
                                       rs.stencil_ref);
    eq_next = static_cast<uint8_t>((ref & ~rs.stencil_write_mask) |
                                   (res & rs.stencil_write_mask));
  }

  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i qv = _mm_set1_epi32(static_cast<int>(q));
  const __m128i qb = _mm_xor_si128(qv, bias);
  const __m128i m_lt = _mm_set1_epi32(w_lt ? -1 : 0);
  const __m128i m_eq = _mm_set1_epi32(w_eq ? -1 : 0);
  const __m128i m_gt = _mm_set1_epi32(w_gt ? -1 : 0);
  const __m128i ref16 = _mm_set1_epi8(static_cast<char>(ref));
  const __m128i next16 = _mm_set1_epi8(static_cast<char>(eq_next));

  uint64_t fragments = 0;
  uint64_t passed = 0;
  uint64_t stencil_updates = 0;
  uint64_t stencil_ok = 0;  // -> stencil_killed when profiling
  for (uint32_t y = y_begin; y < y_end; ++y) {
    uint64_t i = uint64_t{y} * w + rect.x0;
    uint32_t x = rect.x0;
    for (; x + 16 <= rect.x1; x += 16, i += 16) {
      // Pack four 32-lane depth verdicts into one 16-byte mask. The packs
      // are saturating, which maps 0 / -1 lanes onto 0 / -1 bytes exactly.
      __m128i dp32[4];
      for (int g = 0; g < 4; ++g) {
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(depth + i) + g);
        const __m128i db = _mm_xor_si128(d, bias);
        const __m128i lt = _mm_cmpgt_epi32(db, qb);  // q < d
        const __m128i eq = _mm_cmpeq_epi32(qv, d);
        const __m128i gt = _mm_cmpgt_epi32(qb, db);  // q > d
        dp32[g] = _mm_or_si128(
            _mm_or_si128(_mm_and_si128(lt, m_lt), _mm_and_si128(eq, m_eq)),
            _mm_and_si128(gt, m_gt));
      }
      const __m128i dp16 = _mm_packs_epi16(_mm_packs_epi32(dp32[0], dp32[1]),
                                           _mm_packs_epi32(dp32[2], dp32[3]));
      if (exact_equal) {
        const __m128i stored = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(stencil + i));
        const __m128i sok = _mm_cmpeq_epi8(stored, ref16);
        stencil_ok += __builtin_popcount(
            static_cast<unsigned>(_mm_movemask_epi8(sok)));
        const __m128i pass = _mm_and_si128(dp16, sok);
        const __m128i next = _mm_or_si128(_mm_and_si128(pass, next16),
                                          _mm_andnot_si128(pass, stored));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(stencil + i), next);
        passed += __builtin_popcount(
            static_cast<unsigned>(_mm_movemask_epi8(pass)));
        stencil_updates += __builtin_popcount(
            static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
                next, stored))) ^
            0xffffu);
      } else {
        passed += __builtin_popcount(
            static_cast<unsigned>(_mm_movemask_epi8(dp16)));
      }
    }
    for (; x < rect.x1; ++x, ++i) {
      const uint32_t d = depth[i];
      const bool dp = (w_lt && q < d) || (w_eq && q == d) || (w_gt && q > d);
      if (exact_equal) {
        const uint8_t stored = stencil[i];
        const bool sok = stored == ref;
        stencil_ok += sok ? 1 : 0;
        const bool pass = dp && sok;
        const uint8_t next = pass ? eq_next : stored;
        stencil[i] = next;
        stencil_updates += next != stored ? 1 : 0;
        passed += pass ? 1 : 0;
      } else {
        passed += dp ? 1 : 0;
      }
    }
    fragments += rect.x1 - rect.x0;
  }
  result->fragments = fragments;
  result->passed = passed;
  result->stencil_updates = stencil_updates;
  result->occlusion = count_occlusion ? passed : 0;
  if (profile && exact_equal) result->stencil_killed = fragments - stencil_ok;
  return true;
}
#endif  // defined(__SSE2__)

void ReduceQuadKernel(const QuadKernelOut& out, PassRecord* pass,
                      uint64_t* occlusion) {
  pass->fragments += out.fragments;
  pass->fragments_passed += out.passed;
  pass->depth_writes += out.depth_writes;
  pass->stencil_updates += out.stencil_updates;
  pass->prof.alpha_killed += out.alpha_killed;
  pass->prof.stencil_killed += out.stencil_killed;
  if (occlusion != nullptr) *occlusion += out.occlusion;
}

}  // namespace

void Device::RunFixedRows(const ScissorRect& rect, uint32_t y_begin,
                          uint32_t y_end, PassContext* ctx) {
  const uint32_t q = ctx->flat_depth_q;
  const auto depth_q_of = [q](uint64_t) { return q; };
  QuadKernelOut out;
  if (EligibleForTestCount(state_, ctx->alpha_fail)) {
#if defined(__SSE2__)
    if (!TestCountRowsFlatSimd(state_, &fb_, rect, y_begin, y_end,
                               ctx->occlusion != nullptr, ctx->profile, q,
                               &out))
#endif
      TestCountRowKernel(state_, &fb_, rect, y_begin, y_end,
                         ctx->occlusion != nullptr, ctx->profile, depth_q_of,
                         &out);
  } else if (ctx->profile) {
    QuadRowKernel<true>(state_, &fb_, rect, y_begin, y_end, ctx->alpha_fail,
                        ctx->occlusion != nullptr, depth_q_of, &out);
  } else {
    QuadRowKernel<false>(state_, &fb_, rect, y_begin, y_end, ctx->alpha_fail,
                         ctx->occlusion != nullptr, depth_q_of, &out);
  }
  ReduceQuadKernel(out, ctx->pass, ctx->occlusion);
}

void Device::RunDepthCopyRows(const ScissorRect& rect, uint32_t y_begin,
                              uint32_t y_end, const CopyToDepthProgram& prog,
                              const Texture& tex, PassContext* ctx) {
  // Per-fragment depth exactly as CopyToDepthProgram::Execute +
  // FrameBuffer::Quantize compute it: fetch, normalize in double, round
  // once to float32, then quantize (depth_max hoisted -- a uint32 depth
  // store could alias the member copy).
  const float* const texels = tex.data().data();
  const auto channels = static_cast<uint64_t>(tex.channels());
  const auto channel = static_cast<uint64_t>(prog.channel());
  const double scale = prog.scale();
  const double offset = prog.offset();
  const uint32_t depth_max = fb_.depth_max();
  const auto depth_q_of = [=](uint64_t i) -> uint32_t {
    const float v = texels[i * channels + channel];
    const auto d = static_cast<float>((static_cast<double>(v) - offset) *
                                      scale);
    if (d <= 0.0f) return 0;
    if (d >= 1.0f) return depth_max;
    return static_cast<uint32_t>(static_cast<double>(d) * depth_max + 0.5);
  };
  QuadKernelOut out;
  if (EligibleForTestCount(state_, ctx->alpha_fail)) {
    // Fused compare programs (depth writes off) take the branchless path
    // with the texel fetch inlined as the fragment depth.
    TestCountRowKernel(state_, &fb_, rect, y_begin, y_end,
                       ctx->occlusion != nullptr, ctx->profile, depth_q_of,
                       &out);
  } else if (ctx->profile) {
    QuadRowKernel<true>(state_, &fb_, rect, y_begin, y_end, ctx->alpha_fail,
                        ctx->occlusion != nullptr, depth_q_of, &out);
  } else {
    QuadRowKernel<false>(state_, &fb_, rect, y_begin, y_end, ctx->alpha_fail,
                         ctx->occlusion != nullptr, depth_q_of, &out);
  }
  ReduceQuadKernel(out, ctx->pass, ctx->occlusion);
}

void Device::ApplyPlaneTrafficModel(PassRecord* pass) const {
  // Bandwidth model for a tested pass (DESIGN.md §13): the stencil unit
  // reads 1 byte for every fragment that reaches it (all fragments past the
  // alpha stage), the depth unit reads the 4-byte stored depth for bounds
  // and compare, updates write back at plane width, and a passing fragment
  // with the color mask open writes 4 float32 channels.
  const RenderState& rs = state_;
  PassProfile& p = pass->prof;
  const uint64_t after_alpha = pass->fragments - p.alpha_killed;
  const uint64_t depth_tested = after_alpha - p.stencil_killed;
  uint64_t reads = 0;
  if (rs.stencil_test_enabled) reads += after_alpha;
  if (rs.depth_bounds_test_enabled || rs.depth_test_enabled) {
    reads += depth_tested * 4;
  }
  uint64_t writes = pass->stencil_updates + pass->depth_writes * 4;
  if (rs.color_write_mask) writes += pass->fragments_passed * 16;
  p.plane_bytes_read = reads;
  p.plane_bytes_written = writes;
}

Status Device::FinishPass(PassRecord pass) {
  if (pass.profiled) {
    // Close the fragment ledger: kills were counted at the test stages,
    // the rest is arithmetic. Imbalance (more kills than fragments, or
    // more survivors than depth-tested fragments) means the pipeline
    // miscounted; surface it before the unsigned subtraction wraps.
    PassProfile& p = pass.prof;
    if (p.alpha_killed + p.stencil_killed > pass.fragments ||
        pass.fragments - p.alpha_killed - p.stencil_killed <
            pass.fragments_passed) {
      return Status::Internal(
          "gpuprof fragment ledger out of balance in pass '" + pass.label +
          "'");
    }
    p.depth_tested = pass.fragments - p.alpha_killed - p.stencil_killed;
    p.depth_killed = p.depth_tested - pass.fragments_passed;
    p.occlusion_samples =
        pass.in_occlusion_query ? pass.fragments_passed : 0;
  }
  // Record-time enforcement of the PassRecord invariants: a violated
  // invariant means the simulator itself miscounted, which would silently
  // corrupt every downstream PerfModel estimate. Propagated as a Status so
  // release builds catch it too (a fired assert is invisible at -DNDEBUG).
  if (!pass.Valid()) {
    return Status::Internal(
        "PassRecord invariants violated at record time in pass '" +
        pass.label + "'");
  }
  ++counters_.passes;
  counters_.fragments_generated += pass.fragments;
  counters_.fragments_passed += pass.fragments_passed;
  counters_.fp_instructions_executed +=
      pass.fragments * static_cast<uint64_t>(pass.fp_instructions);
  counters_.depth_writes += pass.depth_writes;
  counters_.stencil_updates += pass.stencil_updates;
  if (pass.fused) ++counters_.fused_passes;
  DeviceMetrics::Get().passes.Increment();
  DeviceMetrics::Get().fragments.Add(pass.fragments);
  if (pass.profiled) {
    counters_.prof.Merge(pass.prof);
    DeviceMetrics::Get().alpha_killed.Add(pass.prof.alpha_killed);
    DeviceMetrics::Get().stencil_killed.Add(pass.prof.stencil_killed);
    DeviceMetrics::Get().depth_killed.Add(pass.prof.depth_killed);
    DeviceMetrics::Get().plane_bytes_read.Add(pass.prof.plane_bytes_read);
    DeviceMetrics::Get().plane_bytes_written.Add(
        pass.prof.plane_bytes_written);
    Profiler::Global().RecordPass(pass.label, pass.fragments,
                                  pass.fragments_passed, pass.prof,
                                  pass.fused, pass.cache_hit);
  }
  if (Tracer::Global().enabled()) {
    // One span per rendering pass, carrying the full PassRecord. The span
    // is emitted at pass completion (zero duration on the trace timeline);
    // the nesting under the operator that issued the pass is what matters.
    TraceSpan span("pass:" + pass.label);
    span.AddTag("fragments", pass.fragments);
    span.AddTag("fragments_passed", pass.fragments_passed);
    span.AddTag("fp_instructions", pass.fp_instructions);
    span.AddTag("depth_writes", pass.depth_writes);
    span.AddTag("stencil_updates", pass.stencil_updates);
    span.AddTag("in_occlusion_query",
                pass.in_occlusion_query ? "true" : "false");
    if (pass.fused) span.AddTag("fused", "true");
    if (pass.cache_hit) span.AddTag("cache", "hit");
    if (pass.profiled) {
      span.AddTag("alpha_killed", pass.prof.alpha_killed);
      span.AddTag("stencil_killed", pass.prof.stencil_killed);
      span.AddTag("depth_tested", pass.prof.depth_tested);
      span.AddTag("depth_killed", pass.prof.depth_killed);
      span.AddTag("occlusion_samples", pass.prof.occlusion_samples);
      span.AddTag("plane_bytes_read", pass.prof.plane_bytes_read);
      span.AddTag("plane_bytes_written", pass.prof.plane_bytes_written);
    }
  }
  counters_.pass_log.push_back(std::move(pass));
  return Status::OK();
}

void Device::ArmDeadline(double ms) {
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(ms));
  deadline_armed_ = true;
}

Status Device::CheckInterrupt() const {
  if (cancel_requested_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  if (deadline_armed_ && std::chrono::steady_clock::now() >= deadline_) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

Status Device::RenderInternal(float quad_depth, bool textured) {
  // Consume the one-shot fused mark up front: if this pass faults before
  // recording, the operator-level retry re-issues the whole fused sequence
  // (re-marking included), so the flag must not leak onto an unrelated
  // later pass.
  const bool fused = std::exchange(next_pass_fused_, false);
  // Cooperative per-pass interrupt check plus the watchdog fault site.
  // Both happen before any fragment work, on the issuing thread, so the
  // injector's draw sequence is independent of the worker-thread count.
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  GPUDB_RETURN_NOT_OK(injector_.OnPass());
  const FragmentProgram* program = textured ? program_ : nullptr;
  std::array<const Texture*, 4> units = {nullptr, nullptr, nullptr, nullptr};
  if (textured) {
    for (int u = 0; u < kTextureUnits; ++u) {
      if (bound_units_[u] < 0) continue;
      GPUDB_RETURN_NOT_OK(EnsureResident(bound_units_[u]));
      units[u] = &textures_[bound_units_[u]].data;
      if (units[u]->total_texels() < viewport_pixels_) {
        return Status::FailedPrecondition(
            "bound texture has fewer texels than the viewport covers");
      }
    }
  }

  PassRecord pass;
  pass.label = program != nullptr ? std::string(program->name())
                                  : std::string("fixed-function");
  pass.fp_instructions = program != nullptr ? program->instruction_count() : 0;
  pass.in_occlusion_query = occlusion_active_;
  pass.fused = fused;
  // One relaxed load per pass decides both the kernel instantiation and
  // which PassRecords carry deep counters; a mid-pass toggle cannot tear.
  pass.profiled = Profiler::Global().enabled();

  // The viewport's first n pixels form up to two rectangles: the full rows
  // and a partial final row. Each is a screen-aligned quad at constant
  // depth, so rasterization takes the span fast path (RasterizeRectRows):
  // the two triangles of such a quad cover exactly the rectangle's pixels,
  // once each, with the quad depth passed through bit-exactly, and emitting
  // the runs directly skips three edge-function evaluations per fragment.
  const uint32_t w = fb_.width();
  const uint32_t full_rows = static_cast<uint32_t>(viewport_pixels_ / w);
  const uint32_t remainder = static_cast<uint32_t>(viewport_pixels_ % w);
  std::vector<ScissorRect> rects;
  if (full_rows > 0) rects.push_back({0, 0, w, full_rows});
  if (remainder > 0) rects.push_back({0, full_rows, remainder, full_rows + 1});

  // Clip to the user scissor; surviving rects keep disjoint, increasing row
  // ranges, which is what makes the band split below race-free.
  std::vector<ScissorRect> clipped;
  uint32_t total_rows = 0;
  for (ScissorRect rect : rects) {
    if (state_.scissor_test_enabled) {
      const ScissorRect& s = state_.scissor;
      rect.x0 = std::max(rect.x0, s.x0);
      rect.y0 = std::max(rect.y0, s.y0);
      rect.x1 = std::min(rect.x1, s.x1);
      rect.y1 = std::min(rect.y1, s.y1);
      if (rect.x0 >= rect.x1 || rect.y0 >= rect.y1) continue;
    }
    total_rows += rect.y1 - rect.y0;
    clipped.push_back(rect);
  }

  // Tile decomposition: the pass's rows, concatenated across rects, are
  // split into `bands` contiguous, disjoint horizontal slices. Every pixel
  // belongs to exactly one band and each pass touches each pixel at most
  // once, so framebuffer writes are race-free by construction; per-band
  // PassRecord counters and occlusion counts are reduced in fixed band
  // order afterwards so every reduction (and therefore counters_,
  // pass_log, and EndOcclusionQuery results) is bit-identical to serial
  // execution.
  // Wall-clock band time rides in the Tile but never enters the PassRecord:
  // counters stay bit-stable across thread counts while timings feed the
  // "gpu.band_ms" histogram and trace counter track.
  struct Tile {
    PassRecord pass;
    uint64_t occlusion = 0;
    double band_ms = 0.0;
  };
  const int bands =
      std::max(1, std::min(worker_threads_, static_cast<int>(total_rows)));
  std::vector<Tile> tiles(static_cast<size_t>(bands));

  // Per-pass constants for the fixed-function fast path: every fragment of
  // an untextured quad has the same depth (quantize once) and the constant
  // alpha 1.0 (resolve the alpha test once).
  const uint32_t flat_depth_q = fb_.Quantize(quad_depth);
  const bool alpha_fail =
      state_.alpha_test_enabled &&
      !EvalCompare(state_.alpha_func, 1.0f, state_.alpha_ref);
  // Depth-copy programs leave the output color at its default, so the same
  // hoisted alpha outcome applies and the batched kernel below is exact.
  const CopyToDepthProgram* depth_copy =
      program != nullptr ? program->AsDepthCopy() : nullptr;

  const bool profiled = pass.profiled;
  const auto run_band = [&](int band) {
    // Per-band cooperative cancellation: a band that starts after the
    // interrupt fired does no work. Bands already in their fragment loop
    // finish normally; the post-reduction check below surfaces the error.
    if (InterruptPending()) return;
    const auto band_start = profiled ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point();
    // Tile accumulators live on the band's stack so the optimizer can keep
    // them in registers through the fragment loop; copied into the shared
    // tile vector once at band end.
    Tile tile;
    PassContext ctx;
    ctx.units = units;
    ctx.program = program;
    ctx.pass = &tile.pass;
    ctx.occlusion = occlusion_active_ ? &tile.occlusion : nullptr;
    ctx.flat_depth = program == nullptr;
    ctx.flat_depth_q = flat_depth_q;
    ctx.alpha_fail = alpha_fail;
    ctx.profile = profiled;
    // Rows [row_begin, row_end) of the concatenated row sequence.
    const auto nrows = uint64_t{total_rows};
    const auto row_begin =
        static_cast<uint32_t>(nrows * static_cast<uint64_t>(band) /
                              static_cast<uint64_t>(bands));
    const auto row_end =
        static_cast<uint32_t>(nrows * (static_cast<uint64_t>(band) + 1) /
                              static_cast<uint64_t>(bands));
    uint32_t skipped = 0;
    for (const ScissorRect& rect : clipped) {
      const uint32_t height = rect.y1 - rect.y0;
      const uint32_t lo = std::max(row_begin, skipped);
      const uint32_t hi = std::min(row_end, skipped + height);
      if (lo < hi) {
        const uint32_t yb = rect.y0 + (lo - skipped);
        const uint32_t ye = rect.y0 + (hi - skipped);
        if (program == nullptr) {
          // Fixed-function quad: dedicated kernel with hoisted state.
          RunFixedRows(rect, yb, ye, &ctx);
        } else if (depth_copy != nullptr && units[0] != nullptr) {
          // Depth-copy program: batched fetch/normalize/quantize kernel.
          RunDepthCopyRows(rect, yb, ye, *depth_copy, *units[0], &ctx);
        } else {
          RasterizeRectRows(rect, quad_depth, yb, ye,
                            [this, &ctx](const RasterFragment& frag) {
                              ProcessFragment(frag, &ctx);
                            });
        }
      }
      skipped += height;
    }
    if (profiled) {
      tile.band_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - band_start)
                         .count();
    }
    tiles[static_cast<size_t>(band)] = std::move(tile);
  };

  if (bands == 1) {
    run_band(0);
  } else {
    EnsurePool()->ParallelFor(bands, run_band);
  }

  // An interrupt that fired mid-pass leaves partially rendered bands; the
  // pass is not recorded and the framebuffer contents are indeterminate
  // (the query is being abandoned either way).
  GPUDB_RETURN_NOT_OK(CheckInterrupt());

  for (const Tile& tile : tiles) {
    pass.fragments += tile.pass.fragments;
    pass.fragments_passed += tile.pass.fragments_passed;
    pass.depth_writes += tile.pass.depth_writes;
    pass.stencil_updates += tile.pass.stencil_updates;
    pass.prof.alpha_killed += tile.pass.prof.alpha_killed;
    pass.prof.stencil_killed += tile.pass.prof.stencil_killed;
    occlusion_count_ += tile.occlusion;
  }
  if (profiled) {
    ApplyPlaneTrafficModel(&pass);
    std::vector<double> band_times;
    band_times.reserve(tiles.size());
    for (const Tile& tile : tiles) band_times.push_back(tile.band_ms);
    Profiler::Global().RecordBandTimings(band_times);
  }

  return FinishPass(std::move(pass));
}

Status Device::DrawTriangles(const std::vector<Vertex>& vertices) {
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  GPUDB_RETURN_NOT_OK(injector_.OnPass());
  if (vertices.empty() || vertices.size() % 3 != 0) {
    return Status::InvalidArgument(
        "DrawTriangles requires a positive multiple of 3 vertices");
  }
  std::array<const Texture*, 4> units = {nullptr, nullptr, nullptr, nullptr};
  for (int u = 0; u < kTextureUnits; ++u) {
    if (bound_units_[u] < 0) continue;
    GPUDB_RETURN_NOT_OK(EnsureResident(bound_units_[u]));
    units[u] = &textures_[bound_units_[u]].data;
  }
  PassRecord pass;
  pass.label = program_ != nullptr ? std::string(program_->name())
                                   : std::string("triangles");
  pass.fp_instructions =
      program_ != nullptr ? program_->instruction_count() : 0;
  pass.in_occlusion_query = occlusion_active_;
  pass.profiled = Profiler::Global().enabled();

  // Arbitrary geometry may overlap itself (later triangles read earlier
  // ones' depth/stencil writes), so this path stays strictly serial; only
  // the disjoint-pixel quad passes of RenderInternal parallelize.
  PassContext ctx;
  ctx.units = units;
  ctx.program = program_;
  ctx.pass = &pass;
  ctx.occlusion = occlusion_active_ ? &occlusion_count_ : nullptr;
  ctx.profile = pass.profiled;
  const auto emit = [this, &ctx](const RasterFragment& frag) {
    ProcessFragment(frag, &ctx);
  };

  ScissorRect clip{0, 0, fb_.width(), fb_.height()};
  if (state_.scissor_test_enabled) {
    const ScissorRect& s = state_.scissor;
    clip.x0 = std::max(clip.x0, s.x0);
    clip.y0 = std::max(clip.y0, s.y0);
    clip.x1 = std::min(clip.x1, s.x1);
    clip.y1 = std::min(clip.y1, s.y1);
    if (clip.x0 >= clip.x1 || clip.y0 >= clip.y1) {
      return FinishPass(std::move(pass));
    }
  }
  for (size_t t = 0; t + 2 < vertices.size(); t += 3) {
    const ScreenVertex a = ApplyVertexStage(vertices[t]);
    const ScreenVertex b = ApplyVertexStage(vertices[t + 1]);
    const ScreenVertex c = ApplyVertexStage(vertices[t + 2]);
    RasterizeTriangle(a, b, c, clip, emit);
  }
  if (pass.profiled) ApplyPlaneTrafficModel(&pass);
  return FinishPass(std::move(pass));
}

Status Device::BeginOcclusionQuery() {
  if (occlusion_active_) {
    return Status::FailedPrecondition("occlusion query already active");
  }
  occlusion_active_ = true;
  occlusion_count_ = 0;
  return Status::OK();
}

Result<uint64_t> Device::EndOcclusionQuery() {
  if (!occlusion_active_) {
    return Status::FailedPrecondition("no active occlusion query");
  }
  occlusion_active_ = false;
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  // Transient occlusion-query failure: the query still ended (active flag
  // cleared above) but its count never made it back across the bus.
  GPUDB_RETURN_NOT_OK(injector_.OnOcclusionReadback());
  ++counters_.occlusion_readbacks;
  counters_.bytes_read_back += 4;  // the pixel pass count
  DeviceMetrics::Get().occlusion_readbacks.Increment();
  DeviceMetrics::Get().bytes_read_back.Add(4);
  return occlusion_count_;
}

Result<std::vector<uint8_t>> Device::ReadStencil() {
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  GPUDB_RETURN_NOT_OK(injector_.OnReadback("stencil"));
  counters_.bytes_read_back += fb_.pixel_count();
  DeviceMetrics::Get().bytes_read_back.Add(fb_.pixel_count());
  TraceSpan span("gpu.read_stencil");
  span.AddTag("bytes", fb_.pixel_count());
  return fb_.stencil_plane();
}

Result<std::vector<uint32_t>> Device::ReadDepth() {
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  GPUDB_RETURN_NOT_OK(injector_.OnReadback("depth"));
  counters_.bytes_read_back += fb_.pixel_count() * 4;
  DeviceMetrics::Get().bytes_read_back.Add(fb_.pixel_count() * 4);
  TraceSpan span("gpu.read_depth");
  span.AddTag("bytes", fb_.pixel_count() * 4);
  return fb_.depth_plane();
}

Result<std::vector<float>> Device::ReadColorChannel(int channel) {
  GPUDB_RETURN_NOT_OK(CheckInterrupt());
  GPUDB_RETURN_NOT_OK(injector_.OnReadback("color"));
  counters_.bytes_read_back += fb_.pixel_count() * 4;
  DeviceMetrics::Get().bytes_read_back.Add(fb_.pixel_count() * 4);
  std::vector<float> out(fb_.pixel_count());
  for (uint64_t i = 0; i < fb_.pixel_count(); ++i) {
    out[i] = fb_.color(i)[channel];
  }
  return out;
}

}  // namespace gpu
}  // namespace gpudb
