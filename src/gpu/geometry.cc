#include "src/gpu/geometry.h"

namespace gpudb {
namespace gpu {

Mat4::Mat4() : m_{} {
  m_[0] = m_[5] = m_[10] = m_[15] = 1.0f;
}

Mat4 Mat4::Identity() { return Mat4(); }

Mat4 Mat4::operator*(const Mat4& rhs) const {
  Mat4 out;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      float sum = 0;
      for (int k = 0; k < 4; ++k) {
        sum += at(r, k) * rhs.at(k, c);
      }
      out.set(r, c, sum);
    }
  }
  return out;
}

Vec4 Mat4::Transform(const Vec4& v) const {
  Vec4 out;
  out.x = at(0, 0) * v.x + at(0, 1) * v.y + at(0, 2) * v.z + at(0, 3) * v.w;
  out.y = at(1, 0) * v.x + at(1, 1) * v.y + at(1, 2) * v.z + at(1, 3) * v.w;
  out.z = at(2, 0) * v.x + at(2, 1) * v.y + at(2, 2) * v.z + at(2, 3) * v.w;
  out.w = at(3, 0) * v.x + at(3, 1) * v.y + at(3, 2) * v.z + at(3, 3) * v.w;
  return out;
}

Mat4 Mat4::Ortho(float left, float right, float bottom, float top,
                 float near_z, float far_z) {
  Mat4 out;
  out.set(0, 0, 2.0f / (right - left));
  out.set(1, 1, 2.0f / (top - bottom));
  out.set(2, 2, -2.0f / (far_z - near_z));
  out.set(0, 3, -(right + left) / (right - left));
  out.set(1, 3, -(top + bottom) / (top - bottom));
  out.set(2, 3, -(far_z + near_z) / (far_z - near_z));
  return out;
}

Mat4 Mat4::Translate(float tx, float ty, float tz) {
  Mat4 out;
  out.set(0, 3, tx);
  out.set(1, 3, ty);
  out.set(2, 3, tz);
  return out;
}

Mat4 Mat4::Scale(float sx, float sy, float sz) {
  Mat4 out;
  out.set(0, 0, sx);
  out.set(1, 1, sy);
  out.set(2, 2, sz);
  return out;
}

}  // namespace gpu
}  // namespace gpudb
