#include "src/gpu/types.h"

namespace gpudb {
namespace gpu {

std::string_view ToString(CompareOp op) {
  switch (op) {
    case CompareOp::kNever:
      return "NEVER";
    case CompareOp::kLess:
      return "LESS";
    case CompareOp::kLessEqual:
      return "LEQUAL";
    case CompareOp::kEqual:
      return "EQUAL";
    case CompareOp::kGreaterEqual:
      return "GEQUAL";
    case CompareOp::kGreater:
      return "GREATER";
    case CompareOp::kNotEqual:
      return "NOTEQUAL";
    case CompareOp::kAlways:
      return "ALWAYS";
  }
  return "UNKNOWN";
}

CompareOp Invert(CompareOp op) {
  switch (op) {
    case CompareOp::kNever:
      return CompareOp::kAlways;
    case CompareOp::kLess:
      return CompareOp::kGreaterEqual;
    case CompareOp::kLessEqual:
      return CompareOp::kGreater;
    case CompareOp::kEqual:
      return CompareOp::kNotEqual;
    case CompareOp::kGreaterEqual:
      return CompareOp::kLess;
    case CompareOp::kGreater:
      return CompareOp::kLessEqual;
    case CompareOp::kNotEqual:
      return CompareOp::kEqual;
    case CompareOp::kAlways:
      return CompareOp::kNever;
  }
  return CompareOp::kNever;
}

CompareOp Mirror(CompareOp op) {
  switch (op) {
    case CompareOp::kLess:
      return CompareOp::kGreater;
    case CompareOp::kLessEqual:
      return CompareOp::kGreaterEqual;
    case CompareOp::kGreaterEqual:
      return CompareOp::kLessEqual;
    case CompareOp::kGreater:
      return CompareOp::kLess;
    case CompareOp::kNever:
    case CompareOp::kEqual:
    case CompareOp::kNotEqual:
    case CompareOp::kAlways:
      return op;  // symmetric
  }
  return op;
}

std::string_view ToString(StencilOp op) {
  switch (op) {
    case StencilOp::kKeep:
      return "KEEP";
    case StencilOp::kZero:
      return "ZERO";
    case StencilOp::kReplace:
      return "REPLACE";
    case StencilOp::kIncr:
      return "INCR";
    case StencilOp::kDecr:
      return "DECR";
    case StencilOp::kInvert:
      return "INVERT";
  }
  return "UNKNOWN";
}

}  // namespace gpu
}  // namespace gpudb
