#ifndef GPUDB_GPU_FRAGMENT_PROGRAM_H_
#define GPUDB_GPU_FRAGMENT_PROGRAM_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/gpu/texture.h"
#include "src/gpu/types.h"

namespace gpudb {
namespace gpu {

/// Number of texture units (2004-era hardware exposed at least four).
inline constexpr int kTextureUnits = 4;

/// Inputs available to a fragment program invocation.
struct FragmentInput {
  uint64_t texel_index = 0;   ///< Linear index of the covered texel/pixel.
  float frag_depth = 0.0f;    ///< Interpolated depth of the incoming fragment.
  const Texture* tex0 = nullptr;  ///< Texture bound to unit 0 (may be null).
  /// Textures bound to units 1..3 (null when unbound); unit 0 is `tex0`.
  /// Multi-unit programs implement the paper's "longer vectors can be split
  /// into multiple textures, each with four components" (Section 4.1.2).
  const Texture* tex1 = nullptr;
  const Texture* tex2 = nullptr;
  const Texture* tex3 = nullptr;
};

/// Outputs of a fragment program invocation.
struct FragmentOutput {
  std::array<float, 4> color = {0, 0, 0, 1};  ///< RGBA; alpha feeds alpha test.
  float depth = 0.0f;          ///< Replacement depth if depth_written.
  bool depth_written = false;  ///< True if the program wrote o.depth.
  bool discarded = false;      ///< True if the program executed KILL.
};

/// \brief A programmable pixel-processing-engine program (Section 3.1).
///
/// 2004-era fragment programs (NV_fragment_program / ARB_fragment_program)
/// were short, branch-free instruction sequences with texture fetch, float
/// vector arithmetic, and a KILL instruction; there was no integer arithmetic
/// and no dynamic branching (paper Section 6.1). Implementations here declare
/// their static instruction count so the performance model can charge
/// `fragments x instructions / (pipes x clock)` per pass exactly as the
/// paper's utilization analysis does (Section 6.2.2).
class CopyToDepthProgram;

class FragmentProgram {
 public:
  virtual ~FragmentProgram() = default;

  /// Executes the program for one fragment.
  virtual void Execute(const FragmentInput& in, FragmentOutput* out) const = 0;

  /// Number of fragment-program instructions executed per fragment.
  virtual int instruction_count() const = 0;

  virtual std::string_view name() const = 0;

  /// Self-identification hook for the device's specialized span kernels (a
  /// driver recognizing a common shader pattern): non-null when this
  /// program is a CopyToDepth, whose per-fragment work the device can then
  /// run batched -- with bit-identical results -- instead of through the
  /// virtual Execute. Purely an execution strategy; the cost model still
  /// charges the program's instruction count per fragment.
  virtual const CopyToDepthProgram* AsDepthCopy() const { return nullptr; }
};

/// \brief CopyToDepth (Routine 4.1): fetch the texel channel, normalize it to
/// [0,1], and write it to the fragment depth.
///
/// Matches the paper's 3-instruction copy program (Section 5.4): texture
/// fetch, normalization, copy-to-depth.
class CopyToDepthProgram : public FragmentProgram {
 public:
  /// `channel` selects which attribute channel of tex0 to copy;
  /// `scale`/`offset` normalize attribute values to [0,1]:
  /// depth = (value - offset) * scale.
  ///
  /// The normalization multiply runs in double precision before rounding the
  /// result once to the float32 fragment depth. This models the extended
  /// internal precision of the hardware normalization path and guarantees
  /// the exact-integer round trip through the 24-bit depth buffer (see
  /// QuantizeDepth); a pure-float multiply would drift by one code for
  /// values >= 2^23.
  CopyToDepthProgram(int channel, double scale, double offset)
      : channel_(channel), scale_(scale), offset_(offset) {}

  void Execute(const FragmentInput& in, FragmentOutput* out) const override;
  int instruction_count() const override { return 3; }
  std::string_view name() const override { return "CopyToDepthFP"; }
  const CopyToDepthProgram* AsDepthCopy() const override { return this; }

  int channel() const { return channel_; }
  double scale() const { return scale_; }
  double offset() const { return offset_; }

 private:
  int channel_;
  double scale_;
  double offset_;
};

/// \brief The planner's fused copy+compare pass program (DESIGN.md §14):
/// byte-for-byte the CopyToDepth program -- same 3 instructions, same
/// double-precision normalization -- but rendered with the depth function
/// set to the predicate's comparison instead of ALWAYS and the depth write
/// mask off, so the single pass both materializes the attribute as incoming
/// depth and resolves the compare against a constant seeded via ClearDepth.
/// A distinct name keeps the fused pass visible in pass logs and gpuprof.
class FusedCompareProgram final : public CopyToDepthProgram {
 public:
  using CopyToDepthProgram::CopyToDepthProgram;
  std::string_view name() const override { return "FusedCompareFP"; }
};

/// \brief SemilinearFP (Routine 4.2): computes dot(s, a) and KILLs fragments
/// for which `dot(s, a) op b` is false.
///
/// `s` has one weight per texture channel; unused channels must be 0.
class SemilinearProgram final : public FragmentProgram {
 public:
  SemilinearProgram(const std::array<float, 4>& weights, CompareOp op, float b);

  void Execute(const FragmentInput& in, FragmentOutput* out) const override;
  // DP4 + compare/KILL sequence: fetch, dot product, set-on-compare, kill.
  int instruction_count() const override { return 4; }
  std::string_view name() const override { return "SemilinearFP"; }

 private:
  std::array<float, 4> weights_;
  CompareOp op_;
  float b_;
};

/// \brief TestBit (Routine 4.6): writes frac(value / 2^(i+1)) into the
/// fragment alpha so the alpha test (alpha >= 0.5) passes exactly when bit i
/// of the integer value is set.
///
/// The paper uses this construction because 2004 GPUs "do not support
/// bit-masking operations in fragment programs" (Section 4.3.3).
class TestBitProgram final : public FragmentProgram {
 public:
  TestBitProgram(int channel, int bit) : channel_(channel), bit_(bit) {}

  void Execute(const FragmentInput& in, FragmentOutput* out) const override;
  // Paper Section 6.2.3: "we used a fragment program with at least 5
  // instructions to test if the i-th bit of a texel is 1".
  int instruction_count() const override { return 5; }
  std::string_view name() const override { return "TestBitFP"; }

 private:
  int channel_;
  int bit_;
};

/// \brief Ablation variant of TestBit that rejects failing fragments with
/// KILL inside the program instead of relying on the alpha test. The paper
/// observes this is slower in practice (Section 4.3.3); the extra
/// compare-and-kill instructions make that visible in the cost model.
class TestBitKillProgram final : public FragmentProgram {
 public:
  TestBitKillProgram(int channel, int bit) : channel_(channel), bit_(bit) {}

  void Execute(const FragmentInput& in, FragmentOutput* out) const override;
  // TestBit's 5 instructions plus an in-program compare and KILL.
  int instruction_count() const override { return 7; }
  std::string_view name() const override { return "TestBitKillFP"; }

 private:
  int channel_;
  int bit_;
};

/// \brief Wide SemilinearFP: a semi-linear query over up to eight attributes
/// split across texture units 0 and 1, four channels each -- the paper's
/// prescription for vectors longer than one texture's four channels
/// (Section 4.1.2). Two fetches, two DP4s, an ADD, and the compare/KILL.
class WideSemilinearProgram final : public FragmentProgram {
 public:
  WideSemilinearProgram(const std::array<float, 8>& weights, CompareOp op,
                        float b);

  void Execute(const FragmentInput& in, FragmentOutput* out) const override;
  int instruction_count() const override { return 6; }
  std::string_view name() const override { return "WideSemilinearFP"; }

 private:
  std::array<float, 8> weights_;
  CompareOp op_;
  float b_;
};

/// \brief PolynomialFP: evaluates sum_c w_c * a_c^e_c and KILLs fragments
/// failing `poly op b` -- the polynomial-query extension of Semilinear the
/// paper notes in Section 4.1.2 ("This algorithm can also be extended for
/// evaluating polynomial queries").
///
/// Exponents are small non-negative integers; each power is expanded to
/// repeated multiplies, as a 2004 fragment program (no loops) would be.
class PolynomialProgram final : public FragmentProgram {
 public:
  PolynomialProgram(const std::array<float, 4>& weights,
                    const std::array<int, 4>& exponents, CompareOp op,
                    float b);

  void Execute(const FragmentInput& in, FragmentOutput* out) const override;
  int instruction_count() const override { return instruction_count_; }
  std::string_view name() const override { return "PolynomialFP"; }

 private:
  std::array<float, 4> weights_;
  std::array<int, 4> exponents_;
  CompareOp op_;
  float b_;
  int instruction_count_;
};

/// \brief One step of the bitonic sorting network (Batcher), executed as a
/// fragment program in the style of Purcell et al. [30], which the paper
/// cites: "the output routing from one step to another is known in advance
/// ... each stage of the sorting algorithm is performed as one rendering
/// pass" (Section 2.2).
///
/// For fragment i with network parameters (j, k): the partner is i XOR j;
/// the comparison direction follows the classic bitonic rule, so after all
/// log^2 n steps channel 0 of the output is sorted ascending.
///
/// The instruction count (8) reflects the 2004 reality that computing the
/// partner's texture coordinate from the fragment position costs several
/// arithmetic instructions on top of the two fetches and the compare/select.
class BitonicStepProgram final : public FragmentProgram {
 public:
  BitonicStepProgram(uint64_t j, uint64_t k) : j_(j), k_(k) {}

  void Execute(const FragmentInput& in, FragmentOutput* out) const override;
  int instruction_count() const override { return 8; }
  std::string_view name() const override { return "BitonicStepFP"; }

 private:
  uint64_t j_;
  uint64_t k_;
};

/// \brief Bitonic network step over (key, payload) pairs stored in a
/// two-channel texture: comparisons use channel 0, and both channels move
/// together, so sorting carries row ids (or any 24-bit payload) along with
/// the keys -- the building block for ORDER BY.
class BitonicPairStepProgram final : public FragmentProgram {
 public:
  BitonicPairStepProgram(uint64_t j, uint64_t k) : j_(j), k_(k) {}

  void Execute(const FragmentInput& in, FragmentOutput* out) const override;
  // The scalar step's 8 instructions plus the conditional selects that move
  // the payload channel alongside the key.
  int instruction_count() const override { return 10; }
  std::string_view name() const override { return "BitonicPairStepFP"; }

 private:
  uint64_t j_;
  uint64_t k_;
};

/// \brief Passthrough program used where fixed-function texturing would be:
/// copies the fetched texel to the color output.
class PassthroughProgram final : public FragmentProgram {
 public:
  explicit PassthroughProgram(int channel = 0) : channel_(channel) {}

  void Execute(const FragmentInput& in, FragmentOutput* out) const override;
  int instruction_count() const override { return 1; }
  std::string_view name() const override { return "PassthroughFP"; }

 private:
  int channel_;
};

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_FRAGMENT_PROGRAM_H_
