#ifndef GPUDB_GPU_FRAMEBUFFER_H_
#define GPUDB_GPU_FRAMEBUFFER_H_

#include <array>
#include <cstdint>
#include <vector>

namespace gpudb {
namespace gpu {

/// Depth buffer precision in bits. The paper (Section 6.1, "Precision")
/// stresses that "current GPUs have depth buffers with a maximum of 24 bits";
/// this limit bounds the integer range that Compare (Routine 4.1) can test
/// exactly, and we reproduce it faithfully.
inline constexpr int kDepthBits = 24;
inline constexpr uint32_t kDepthMax = (1u << kDepthBits) - 1;

/// Quantizes a normalized depth in [0,1] to the 24-bit fixed point value a
/// real depth buffer stores.
///
/// The multiply-and-round runs in double precision, modeling the rasterizer's
/// high-precision fixed-point depth path: for every 24-bit integer v, the
/// float32 value nearest to v/(2^24-1) quantizes back to exactly v (error
/// bound v * 2^-25 < 0.5), which is what keeps integer comparisons exact.
inline uint32_t QuantizeDepth(float d) {
  if (d <= 0.0f) return 0;
  if (d >= 1.0f) return kDepthMax;
  // round-to-nearest, as GL implementations do when converting to fixed point
  return static_cast<uint32_t>(static_cast<double>(d) * kDepthMax + 0.5);
}

/// Inverse of QuantizeDepth (exact for quantized values).
inline float DepthToFloat(uint32_t q) {
  return static_cast<float>(q) / static_cast<float>(kDepthMax);
}

/// \brief The frame-buffer: color, depth, and stencil planes (Section 3.1).
///
/// * Color buffer: RGBA float per pixel (FX-class GPUs could render to
///   float targets; only the alpha channel matters for our algorithms).
/// * Depth buffer: fixed point (24 bits by default, the 2004 maximum the
///   paper laments in Section 6.1), stored as the quantized integer so
///   that comparisons are bit-exact.
/// * Stencil buffer: 8 bits per pixel.
///
/// `depth_bits` is configurable (1-24) to let experiments demonstrate the
/// precision ceiling: a 16-bit buffer collapses distinct 19-bit attribute
/// values into shared depth codes and comparisons start miscounting.
class FrameBuffer {
 public:
  FrameBuffer(uint32_t width, uint32_t height, int depth_bits = kDepthBits)
      : width_(width),
        height_(height),
        depth_bits_(depth_bits),
        depth_max_((uint32_t{1} << depth_bits) - 1),
        color_(uint64_t{width} * height * 4, 0.0f),
        depth_(uint64_t{width} * height, depth_max_),
        stencil_(uint64_t{width} * height, 0) {}

  uint32_t width() const { return width_; }
  uint32_t height() const { return height_; }
  uint64_t pixel_count() const { return uint64_t{width_} * height_; }
  int depth_bits() const { return depth_bits_; }
  uint32_t depth_max() const { return depth_max_; }

  /// Quantizes a normalized depth to this buffer's precision.
  uint32_t Quantize(float d) const {
    if (d <= 0.0f) return 0;
    if (d >= 1.0f) return depth_max_;
    return static_cast<uint32_t>(static_cast<double>(d) * depth_max_ + 0.5);
  }

  void ClearColor(float r, float g, float b, float a);
  /// Clears depth to a normalized value (default 1.0, the far plane).
  void ClearDepth(float d);
  void ClearStencil(uint8_t s);

  // --- per-pixel access by linear index -------------------------------
  uint32_t depth(uint64_t i) const { return depth_[i]; }
  void set_depth(uint64_t i, uint32_t q) { depth_[i] = q; }

  uint8_t stencil(uint64_t i) const { return stencil_[i]; }
  void set_stencil(uint64_t i, uint8_t s) { stencil_[i] = s; }

  const float* color(uint64_t i) const { return &color_[i * 4]; }
  void set_color(uint64_t i, const std::array<float, 4>& rgba) {
    for (int c = 0; c < 4; ++c) color_[i * 4 + c] = rgba[c];
  }

  const std::vector<uint32_t>& depth_plane() const { return depth_; }
  const std::vector<uint8_t>& stencil_plane() const { return stencil_; }

  // --- raw plane access for per-pass kernels --------------------------
  // The uint8_t stencil stores of the fragment pipeline can legally alias
  // any object (char aliases everything), so loops going through the
  // accessors above reload the vector data pointers every fragment.
  // Kernels hoist these pointers into locals instead.
  uint32_t* depth_data() { return depth_.data(); }
  uint8_t* stencil_data() { return stencil_.data(); }
  float* color_data() { return color_.data(); }

 private:
  uint32_t width_;
  uint32_t height_;
  int depth_bits_;
  uint32_t depth_max_;
  std::vector<float> color_;     // RGBA interleaved
  std::vector<uint32_t> depth_;  // quantized to depth_bits_
  std::vector<uint8_t> stencil_;
};

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_FRAMEBUFFER_H_
