#ifndef GPUDB_GPU_PLANE_CACHE_H_
#define GPUDB_GPU_PLANE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpudb {
namespace gpu {

/// \brief Identity of one cached depth plane (DESIGN.md §14).
///
/// A cached plane is the depth buffer exactly as CopyToDepth leaves it for
/// one attribute, so the key must pin down everything that determines those
/// bits: the table and its catalog version (a reload or ANALYZE bumps the
/// version, so stale planes can never hit even before they are evicted),
/// the column, the normalization (scale/offset of the DepthEncoding -- two
/// encodings of the same column quantize differently), and the viewport
/// pixel count the copy covered.
struct PlaneKey {
  std::string table;
  uint64_t version = 0;
  int column = -1;
  double scale = 1.0;
  double offset = 0.0;
  uint64_t viewport_pixels = 0;

  bool operator==(const PlaneKey&) const = default;
};

/// \brief LRU cache of quantized depth planes for hot columns.
///
/// Owned by gpu::Device and charged against the same simulated video-memory
/// budget as textures, but strictly lower priority: the device evicts cached
/// planes before it evicts any texture, and refuses to insert a plane that
/// would require evicting a texture. The cache itself is policy-free storage
/// -- budget arithmetic and metrics live in the device.
///
/// Entries are stamped with a logical clock on insert and lookup; EvictLru
/// removes the least-recently-stamped entry. A handful of hot columns is the
/// expected population, so storage is a flat vector with linear search --
/// deterministic and cheap at that size.
///
/// Deliberately unannotated (no mutex, no GUARDED_BY): the cache is
/// Device-serialized state. Every caller already holds the device
/// exclusively -- single-context dispatch in the classic engine, an
/// exclusive DevicePool lease in the pooled one -- so a mutex here would
/// add a lock at device level (DESIGN.md §12) protecting nothing. If the
/// cache ever outlives that ownership model, annotate before you mutex
/// (EXTENDING.md).
class PlaneCache {
 public:
  /// Returns the cached plane for `key`, or nullptr. A hit refreshes the
  /// entry's LRU stamp. The pointer is invalidated by any mutating call.
  const std::vector<uint32_t>* Lookup(const PlaneKey& key);

  /// Whether a plane for `key` is cached. Unlike Lookup, does not refresh
  /// the entry's LRU stamp (safe for assertions and introspection).
  bool Contains(const PlaneKey& key) const;

  /// Inserts (or replaces) the plane for `key` and stamps it most recent.
  void Insert(const PlaneKey& key, std::vector<uint32_t> plane);

  /// Evicts the least-recently-used entry. Returns false when empty.
  bool EvictLru();

  /// Drops every plane belonging to `table` (any version, any column).
  /// Returns the number of entries removed.
  size_t InvalidateTable(std::string_view table);

  void Clear();

  /// Total bytes held (4 bytes per cached depth texel).
  uint64_t bytes() const { return bytes_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    PlaneKey key;
    std::vector<uint32_t> plane;
    uint64_t last_used = 0;
  };

  std::vector<Entry> entries_;
  uint64_t bytes_ = 0;
  uint64_t clock_ = 0;
};

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_PLANE_CACHE_H_
