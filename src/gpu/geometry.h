#ifndef GPUDB_GPU_GEOMETRY_H_
#define GPUDB_GPU_GEOMETRY_H_

#include <array>
#include <cstdint>

namespace gpudb {
namespace gpu {

/// \brief Homogeneous 4-vector used by the vertex processing engine.
struct Vec4 {
  float x = 0, y = 0, z = 0, w = 1;
};

/// \brief Column-major 4x4 matrix (OpenGL convention).
class Mat4 {
 public:
  /// Identity by default.
  Mat4();

  /// Element access: row r, column c.
  float at(int r, int c) const { return m_[c * 4 + r]; }
  void set(int r, int c, float v) { m_[c * 4 + r] = v; }

  /// Matrix product this * rhs.
  Mat4 operator*(const Mat4& rhs) const;

  /// Transforms a homogeneous vector.
  Vec4 Transform(const Vec4& v) const;

  static Mat4 Identity();

  /// Orthographic projection mapping [left,right]x[bottom,top]x[near,far]
  /// to the [-1,1] clip cube (glOrtho).
  static Mat4 Ortho(float left, float right, float bottom, float top,
                    float near_z, float far_z);

  /// Translation matrix.
  static Mat4 Translate(float tx, float ty, float tz);

  /// Non-uniform scale.
  static Mat4 Scale(float sx, float sy, float sz);

 private:
  std::array<float, 16> m_;
};

/// \brief A vertex as submitted to the pipeline: object-space position plus
/// a texture coordinate.
struct Vertex {
  Vec4 position;
  float u = 0, v = 0;
};

/// \brief A vertex after the vertex processing engine and viewport
/// transform: window coordinates (pixels), depth in [0,1], texcoords.
struct ScreenVertex {
  float x = 0, y = 0;
  float depth = 0;
  float u = 0, v = 0;
};

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_GEOMETRY_H_
