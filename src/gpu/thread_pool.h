#ifndef GPUDB_GPU_THREAD_POOL_H_
#define GPUDB_GPU_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace gpudb {
namespace gpu {

/// \brief Persistent worker pool backing the Device's parallel pixel
/// engines (paper Section 3.1: the FX 5900's 8 parallel pixel pipelines).
///
/// The pool models the fixed set of pixel pipelines: it is created once,
/// its workers sleep between passes, and each rendering pass hands every
/// worker a disjoint slice of the screen. There is no task queue -- the
/// only operation is a blocking ParallelFor, which is all a
/// one-pass-at-a-time device needs.
///
/// ParallelFor is NOT re-entrant: the Device issues one pass at a time, so
/// a single in-flight parallel region per pool is the expected regime. A
/// nested or concurrent ParallelFor is handled gracefully by running that
/// region serially on its calling thread (never corrupting the active
/// job), and a thread count below 1 is clamped to 1.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining engine).
  /// A count below 1 is clamped to 1; a pool of 1 has no workers and
  /// ParallelFor degenerates to a serial loop on the caller.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of engines (workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs task(i) for every i in [0, n), distributing indices across the
  /// engines, and returns when all n invocations have finished. The caller
  /// participates, so a pool of size 1 runs everything inline. A call made
  /// while another region is in flight (nested or from another thread)
  /// runs serially on the calling thread.
  void ParallelFor(int n, const std::function<void(int)>& task);

  /// The default engine count: $GPUDB_THREADS when set to a positive
  /// integer, else std::thread::hardware_concurrency() (minimum 1).
  static int DefaultThreads();

 private:
  void WorkerLoop();

  /// Claims indices of the current job until they run out.
  void RunJob();

  // lint: lock-free (written only by the constructor, before any worker
  // can observe it; joined by the destructor after shutdown)
  std::vector<std::thread> workers_;

  /// Lock-order level: `device` (the pool is the innermost engine tier) --
  /// task bodies run with mu_ released, so user code never executes under
  /// the pool lock.
  Mutex mu_;
  CondVar work_ready_;
  CondVar work_done_;
  /// null = no job posted.
  const std::function<void(int)>* task_ GUARDED_BY(mu_) = nullptr;
  int job_size_ GUARDED_BY(mu_) = 0;
  /// Next unclaimed task index.
  int next_index_ GUARDED_BY(mu_) = 0;
  /// Task invocations not yet finished.
  int remaining_ GUARDED_BY(mu_) = 0;
  /// Generation counter so sleepers skip stale jobs.
  uint64_t job_id_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_THREAD_POOL_H_
