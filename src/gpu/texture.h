#ifndef GPUDB_GPU_TEXTURE_H_
#define GPUDB_GPU_TEXTURE_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace gpudb {
namespace gpu {

/// Maximum number of channels per texture (RGBA), as on real hardware and as
/// the paper notes for Semilinear: "There is a limit of four channels per
/// texture. Longer vectors can be split into multiple textures."
inline constexpr int kMaxChannels = 4;

/// Largest integer exactly representable in a float32 texel (paper Section
/// 3.3: "This format can precisely represent integers up to 24 bits").
inline constexpr uint32_t kMaxExactInt = (1u << 24);

/// \brief A 2D array of float texels with 1-4 channels, the on-GPU data
/// representation for database attributes (paper Section 3.3).
///
/// Each record of a relational table maps to one texel; up to four attributes
/// of the record occupy the R/G/B/A channels of that texel (or the same texel
/// location across multiple single-channel textures).
class Texture {
 public:
  /// Creates a zero-filled texture. Fails if the dimensions or channel count
  /// are out of range.
  [[nodiscard]] static Result<Texture> Make(uint32_t width, uint32_t height, int channels);

  /// Creates a texture sized to hold `count` records in row-major order with
  /// the given row width (the paper uses 1000x1000 textures; the last row may
  /// be partially used). `values[c]` supplies channel c.
  [[nodiscard]] static Result<Texture> FromColumns(
      const std::vector<const std::vector<float>*>& values, uint32_t width);

  uint32_t width() const { return width_; }
  uint32_t height() const { return height_; }
  int channels() const { return channels_; }
  /// Number of texels actually backed by records (<= width*height).
  uint64_t valid_texels() const { return valid_texels_; }
  /// Total allocated texels (width * height).
  uint64_t total_texels() const { return uint64_t{width_} * height_; }
  /// Size of the texel payload in bytes (float32 per channel).
  uint64_t byte_size() const { return total_texels() * channels_ * 4; }

  /// Value of channel `c` at linear texel index `i` (row-major).
  float At(uint64_t i, int c) const { return data_[i * channels_ + c]; }
  void Set(uint64_t i, int c, float v) { data_[i * channels_ + c] = v; }

  /// Value at pixel coordinates.
  float At(uint32_t x, uint32_t y, int c) const {
    return At(uint64_t{y} * width_ + x, c);
  }

  const std::vector<float>& data() const { return data_; }

 private:
  Texture(uint32_t width, uint32_t height, int channels)
      : width_(width),
        height_(height),
        channels_(channels),
        valid_texels_(uint64_t{width} * height),
        data_(uint64_t{width} * height * channels, 0.0f) {}

  uint32_t width_;
  uint32_t height_;
  int channels_;
  uint64_t valid_texels_;
  std::vector<float> data_;
};

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_TEXTURE_H_
