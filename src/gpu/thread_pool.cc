#include "src/gpu/thread_pool.h"

#include <chrono>
#include <cstdlib>

#include "src/common/metrics.h"
#include "src/common/profile.h"
#include "src/common/trace.h"

namespace gpudb {
namespace gpu {

ThreadPool::ThreadPool(int threads) {
  // A non-positive count is clamped to the minimum pool (just the calling
  // thread) instead of asserting: a pool always needs at least one engine,
  // and crashing a release build over a config value is worse than running
  // serially.
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads > 1 ? threads - 1 : 0));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("GPUDB_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

void ThreadPool::RunJob() {
  // Per-engine busy time (gpuprof): one enabled() load per job, one
  // histogram record per engine per job -- nothing on the per-claim path
  // beyond two clock reads, and nothing at all when profiling is off.
  const bool profile = Profiler::Global().enabled();
  double busy_ms = 0.0;
  bool worked = false;
  // Claim-and-run until this job's indices are exhausted. The lock is only
  // held for the claim and the completion count; task bodies run unlocked.
  // The job-id check keeps a thread that finished job N from claiming
  // indices of a job N+1 posted while it was between iterations (its cached
  // task pointer would be stale); my_job is latched under the same lock
  // acquisition as the first claim.
  uint64_t my_job = 0;
  bool latched = false;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    int i = 0;
    {
      MutexLock lock(&mu_);
      if (!latched) {
        my_job = job_id_;
        latched = true;
      }
      if (task_ == nullptr || job_id_ != my_job || next_index_ >= job_size_) {
        break;
      }
      task = task_;
      i = next_index_++;
    }
    if (profile) {
      const auto start = std::chrono::steady_clock::now();
      (*task)(i);
      busy_ms += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
      worked = true;
    } else {
      (*task)(i);
    }
    {
      MutexLock lock(&mu_);
      // The posting thread cannot recycle the job while remaining_ > 0, so
      // this decrement always belongs to my_job.
      if (--remaining_ == 0) work_done_.NotifyAll();
    }
  }
  if (worked) {
    static MetricHistogram& engine_busy =
        MetricsRegistry::Global().histogram("gpu.engine_busy_ms");
    engine_busy.Record(busy_ms);
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) tracer.Counter("gpu.engine_busy_ms", busy_ms);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_job = 0;
  for (;;) {
    {
      MutexLock lock(&mu_);
      // Predicate re-checked inline (not via a wait lambda) so the guarded
      // reads sit lexically inside the MutexLock scope -- the shape the
      // capability analysis verifies.
      while (!shutdown_ && !(task_ != nullptr && job_id_ != seen_job &&
                             next_index_ < job_size_)) {
        work_ready_.Wait(mu_);
      }
      if (shutdown_) return;
      seen_job = job_id_;
    }
    RunJob();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& task) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) task(i);
    return;
  }
  bool in_flight = false;
  {
    MutexLock lock(&mu_);
    if (task_ != nullptr) {
      in_flight = true;
    } else {
      task_ = &task;
      job_size_ = n;
      next_index_ = 0;
      remaining_ = n;
      ++job_id_;
    }
  }
  if (in_flight) {
    // A parallel region is already in flight (a task called back into
    // ParallelFor, or two threads share the pool). Degrade to a serial
    // loop on the caller instead of corrupting the active job's state:
    // the invocations still all happen, just without extra parallelism.
    for (int i = 0; i < n; ++i) task(i);
    return;
  }
  work_ready_.NotifyAll();
  RunJob();
  {
    MutexLock lock(&mu_);
    while (remaining_ != 0) work_done_.Wait(mu_);
    task_ = nullptr;
    job_size_ = 0;
  }
}

}  // namespace gpu
}  // namespace gpudb
