#ifndef GPUDB_GPU_RENDER_STATE_H_
#define GPUDB_GPU_RENDER_STATE_H_

#include <cstdint>

#include "src/gpu/framebuffer.h"
#include "src/gpu/rasterizer.h"
#include "src/gpu/types.h"

namespace gpudb {
namespace gpu {

/// \brief Per-fragment test configuration (the OpenGL state machine slice the
/// paper's algorithms use: alpha, stencil, depth, and depth-bounds tests plus
/// write masks; Sections 3.1, 3.4 and the GL_EXT_depth_bounds_test feature
/// used by Routine 4.4).
///
/// This is a passive value object; Device owns the authoritative instance and
/// exposes mutators mirroring glEnable/glDepthFunc/etc.
struct RenderState {
  // --- Alpha test (runs before stencil and depth) ---------------------
  bool alpha_test_enabled = false;
  CompareOp alpha_func = CompareOp::kAlways;
  float alpha_ref = 0.0f;

  // --- Stencil test ----------------------------------------------------
  bool stencil_test_enabled = false;
  CompareOp stencil_func = CompareOp::kAlways;
  uint8_t stencil_ref = 0;
  uint8_t stencil_value_mask = 0xff;
  uint8_t stencil_write_mask = 0xff;
  StencilOp stencil_fail_op = StencilOp::kKeep;    // Op1: stencil test fails
  StencilOp stencil_zfail_op = StencilOp::kKeep;   // Op2: depth test fails
  StencilOp stencil_zpass_op = StencilOp::kKeep;   // Op3: both pass

  // --- Depth test ------------------------------------------------------
  bool depth_test_enabled = false;
  CompareOp depth_func = CompareOp::kLess;
  bool depth_write_mask = true;

  // --- Depth bounds test (GL_EXT_depth_bounds_test) --------------------
  // Tests the depth value ALREADY STORED in the framebuffer at the
  // fragment's pixel against [min, max] -- not the fragment's own depth.
  // This is exactly why Routine 4.4 (Range) works: attribute values are
  // first copied into the depth buffer, then a quad is rendered and only
  // fragments over in-range stored values survive.
  bool depth_bounds_test_enabled = false;
  uint32_t depth_bounds_min = 0;         // quantized, inclusive
  uint32_t depth_bounds_max = kDepthMax; // quantized, inclusive

  // --- Scissor test ------------------------------------------------------
  // Restricts rasterization to a window-space rectangle (glScissor).
  bool scissor_test_enabled = false;
  ScissorRect scissor;

  // --- Write masks -----------------------------------------------------
  bool color_write_mask = true;
};

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_RENDER_STATE_H_
