#include "src/gpu/device_pool.h"

#include <cstdlib>
#include <utility>

#include "src/common/metrics.h"

namespace gpudb {
namespace gpu {

namespace {

/// Pool metrics, cached like DeviceMetrics in device.cc.
struct PoolMetrics {
  MetricGauge& device_state =
      MetricsRegistry::Global().gauge("pool.device_state");
  MetricCounter& failovers =
      MetricsRegistry::Global().counter("pool.failovers");

  static PoolMetrics& Get() {
    static PoolMetrics* m = new PoolMetrics();
    return *m;
  }
};

}  // namespace

std::string_view ToString(DeviceHealth health) {
  switch (health) {
    case DeviceHealth::kHealthy:
      return "healthy";
    case DeviceHealth::kDegraded:
      return "degraded";
    case DeviceHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

Result<std::unique_ptr<DevicePool>> DevicePool::Make(
    const DevicePoolOptions& options) {
  if (options.devices < 1) {
    return Status::InvalidArgument("DevicePool needs at least one device");
  }
  if (options.quarantine_threshold < 1 || options.probe_interval < 1) {
    return Status::InvalidArgument(
        "DevicePool quarantine_threshold and probe_interval must be >= 1");
  }
  auto pool = std::unique_ptr<DevicePool>(new DevicePool(options));
  pool->slots_.resize(static_cast<size_t>(options.devices));
  for (int i = 0; i < options.devices; ++i) {
    Slot& slot = pool->slots_[static_cast<size_t>(i)];
    slot.device = std::make_unique<Device>(options.width, options.height);
    slot.exec_mu = std::make_unique<std::mutex>();
    if (options.worker_threads > 0) {
      GPUDB_RETURN_NOT_OK(slot.device->SetWorkerThreads(options.worker_threads));
    }
    if (options.vram_budget > 0) {
      GPUDB_RETURN_NOT_OK(slot.device->SetVideoMemoryBudget(options.vram_budget));
    }
    // Each device is its own failure domain: same base (seed, rate), its own
    // draw stream selected by device_id (fault_injector.h).
    FaultConfig faults = options.faults;
    faults.device_id = static_cast<uint32_t>(i);
    slot.device->ConfigureFaults(faults);
  }
  {
    MutexLock lock(&pool->mu_);
    pool->UpdateStateGaugeLocked();
  }
  return pool;
}

DevicePool::Lease DevicePool::Acquire(int id) {
  Slot& slot = slots_[static_cast<size_t>(id)];
  return Lease(slot.device.get(), id, std::unique_lock<std::mutex>(*slot.exec_mu));
}

Result<DevicePool::Lease> DevicePool::TryAcquire(int id) {
  Lease lease = Acquire(id);
  {
    MutexLock lock(&mu_);
    if (slots_[static_cast<size_t>(id)].forced_lost) {
      return Status::DeviceLost("device " + std::to_string(id) +
                                " was force-lost after admission");
    }
  }
  return lease;
}

DeviceHealth DevicePool::HealthLocked(const Slot& slot) const {
  if (slot.forced_lost ||
      slot.consecutive_failures >= options_.quarantine_threshold) {
    return DeviceHealth::kQuarantined;
  }
  if (slot.consecutive_failures > 0) return DeviceHealth::kDegraded;
  return DeviceHealth::kHealthy;
}

void DevicePool::UpdateStateGaugeLocked() {
  double total = 0.0;
  for (const Slot& slot : slots_) {
    total += static_cast<double>(HealthLocked(slot));
  }
  PoolMetrics::Get().device_state.Set(total);
}

bool DevicePool::AdmitDispatch(int id) {
  MutexLock lock(&mu_);
  Slot& slot = slots_[static_cast<size_t>(id)];
  if (slot.forced_lost) return false;  // hot-unplugged: not even probes
  if (HealthLocked(slot) != DeviceHealth::kQuarantined) return true;
  // Quarantined: admit every probe_interval-th ask as a recovery probe.
  ++slot.asks_while_quarantined;
  if (slot.asks_while_quarantined >= options_.probe_interval) {
    slot.asks_while_quarantined = 0;
    return true;
  }
  return false;
}

DeviceHealth DevicePool::health(int id) const {
  MutexLock lock(&mu_);
  return HealthLocked(slots_[static_cast<size_t>(id)]);
}

void DevicePool::RecordFailure(int id) {
  MutexLock lock(&mu_);
  Slot& slot = slots_[static_cast<size_t>(id)];
  ++slot.consecutive_failures;
  UpdateStateGaugeLocked();
}

void DevicePool::RecordSuccess(int id) {
  MutexLock lock(&mu_);
  Slot& slot = slots_[static_cast<size_t>(id)];
  slot.consecutive_failures = 0;
  slot.asks_while_quarantined = 0;
  UpdateStateGaugeLocked();
}

void DevicePool::RecordFailover(int id) {
  (void)id;
  PoolMetrics::Get().failovers.Increment();
  MutexLock lock(&mu_);
  ++failovers_;
}

void DevicePool::ForceDeviceLost(int id) {
  MutexLock lock(&mu_);
  slots_[static_cast<size_t>(id)].forced_lost = true;
  UpdateStateGaugeLocked();
}

void DevicePool::Revive(int id) {
  MutexLock lock(&mu_);
  Slot& slot = slots_[static_cast<size_t>(id)];
  slot.forced_lost = false;
  slot.consecutive_failures = 0;
  slot.asks_while_quarantined = 0;
  UpdateStateGaugeLocked();
}

bool DevicePool::forced_lost(int id) const {
  MutexLock lock(&mu_);
  return slots_[static_cast<size_t>(id)].forced_lost;
}

uint64_t DevicePool::failovers() const {
  MutexLock lock(&mu_);
  return failovers_;
}

int DevicesFromEnv(int fallback) {
  const char* devices = std::getenv("GPUDB_DEVICES");
  if (devices == nullptr) return fallback;
  const int n = std::atoi(devices);
  return n >= 1 ? n : fallback;
}

}  // namespace gpu
}  // namespace gpudb
