#ifndef GPUDB_GPU_DEVICE_H_
#define GPUDB_GPU_DEVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/gpu/counters.h"
#include "src/gpu/fault_injector.h"
#include "src/gpu/fragment_program.h"
#include "src/gpu/framebuffer.h"
#include "src/gpu/geometry.h"
#include "src/gpu/plane_cache.h"
#include "src/gpu/rasterizer.h"
#include "src/gpu/render_state.h"
#include "src/gpu/texture.h"
#include "src/gpu/thread_pool.h"
#include "src/gpu/types.h"

namespace gpudb {
namespace gpu {

/// Texture object handle returned by Device::UploadTexture.
using TextureId = int;

/// \brief Software model of the 2004-era graphics pipeline slice used by the
/// paper: texture memory, a color/depth/stencil framebuffer, programmable
/// fragment processing, the alpha/stencil/depth/depth-bounds test chain, and
/// NV_occlusion_query-style pixel pass counting.
///
/// Semantics follow the OpenGL 1.5 fragment pipeline:
///   fragment program -> alpha test -> stencil test -> depth bounds test ->
///   depth test -> (occlusion count, buffer writes)
/// with the three-outcome stencil operation of Section 3.4 (Op1 on stencil
/// fail, Op2 on depth fail, Op3 on pass).
///
/// Screen-filling quads are modeled as covering the first `viewport_pixels()`
/// pixels of the framebuffer in row-major order; real host code achieves the
/// same coverage with a scissor rectangle or a pair of quads, so this is a
/// simulation-level shortcut with identical semantics.
///
/// The class is a facade: all mutating calls also maintain DeviceCounters so
/// that PerfModel can reconstruct what the operations would have cost on the
/// paper's GeForce FX 5900 Ultra.
class Device {
 public:
  /// Creates a device whose framebuffer is `width` x `height` pixels.
  /// The paper's setup is 1000x1000 (one million records per screen) with
  /// the 24-bit depth buffer that was the 2004 maximum; `depth_bits` can be
  /// lowered to reproduce the Section 6.1 precision ceiling.
  explicit Device(uint32_t width, uint32_t height,
                  int depth_bits = kDepthBits);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // --- Texture memory --------------------------------------------------

  /// Copies a texture into video memory, charging the AGP upload to the
  /// counters. Returns a handle for BindTexture.
  [[nodiscard]] Result<TextureId> UploadTexture(Texture texture);

  /// Allocates an uninitialized texture in video memory (no bus transfer) --
  /// scratch storage for multi-pass ping-pong algorithms such as the bitonic
  /// sort (glTexImage2D with a null pointer, in 2004 terms).
  [[nodiscard]] Result<TextureId> CreateTexture(uint32_t width, uint32_t height,
                                  int channels);

  /// Copies the framebuffer's color plane into a texture of matching
  /// dimensions (glCopyTexSubImage2D): the 2004 idiom for render-to-texture
  /// ping-pong. Only the first `channels()` color channels are copied.
  /// Charged as a one-cycle-per-texel on-card pass.
  [[nodiscard]] Status CopyColorToTexture(TextureId dst);

  /// Reads a texture's contents back to the CPU (charged as a GPU->CPU
  /// transfer). Used to materialize sorted output.
  [[nodiscard]] Result<std::vector<float>> ReadTexture(TextureId id, int channel);

  /// Partial texture update (glTexSubImage2D): overwrites `values.size()`
  /// texels of channel `channel` starting at linear texel `offset`, charging
  /// only the updated bytes to the upload bus. This is what keeps streaming
  /// windows incremental (only new records cross the AGP bus).
  [[nodiscard]] Status UpdateTexture(TextureId id, uint64_t offset,
                       const std::vector<float>& values, int channel = 0);

  /// Binds a texture to texture unit 0.
  [[nodiscard]] Status BindTexture(TextureId id);

  /// Binds a texture to a numbered unit (0..3). Multi-unit programs read
  /// attribute vectors split across textures (paper Section 4.1.2).
  [[nodiscard]] Status BindTextureUnit(int unit, TextureId id);

  /// Unbinds a unit (fragments see a null texture there).
  [[nodiscard]] Status UnbindTextureUnit(int unit);

  const Texture& texture(TextureId id) const { return textures_[id].data; }

  // --- Video memory management (paper Sections 5.1, 6.1) -----------------

  /// Sets the video memory budget in bytes (default 256 MB, the paper's
  /// GeForce FX 5900 Ultra). Textures beyond the budget are evicted
  /// least-recently-used; touching an evicted texture swaps it back in
  /// across the bus, charged to the `bytes_swapped` counter -- the
  /// out-of-core texture traffic Section 6.1 describes. Shrinking the
  /// budget below the size of any single texture makes that texture
  /// unusable (ResourceExhausted on touch).
  [[nodiscard]] Status SetVideoMemoryBudget(uint64_t bytes);

  uint64_t video_memory_budget() const { return video_memory_budget_; }
  uint64_t video_memory_used() const { return resident_bytes_; }

  // --- Depth-plane cache (DESIGN.md §14) ----------------------------------

  /// Tags the next quad pass as planner-fused: RenderInternal transfers the
  /// one-shot flag onto that pass's PassRecord, and FinishPass counts it in
  /// `fused_passes`. Purely an accounting mark -- the pass itself is
  /// configured by the caller (see core::FusedComparePass).
  void MarkNextPassFused() { next_pass_fused_ = true; }

  /// If a depth plane for `key` is cached, re-materializes it into the
  /// first `key.viewport_pixels` depth texels -- the on-card blit that
  /// replaces CopyToDepth for a hot column -- and returns true. The blit is
  /// recorded as a synthetic "plane-restore" pass (1 instruction/texel, 4
  /// bytes/texel plane writes) so the byte ledger and figures stay honest.
  /// A miss records nothing and returns false; the caller then runs the
  /// real copy and may CacheDepthPlane afterwards.
  [[nodiscard]] Result<bool> RestoreCachedDepthPlane(const PlaneKey& key);

  /// Snapshots the first `key.viewport_pixels` depth texels into the plane
  /// cache under `key`, recorded as a synthetic "plane-snapshot" pass (4
  /// bytes/texel plane reads). Cached planes are charged against the video
  /// memory budget at strictly lower priority than textures: this call
  /// evicts its own LRU planes to make room but never evicts a texture --
  /// if the plane cannot fit beside the resident textures it is silently
  /// not cached (the query already ran; caching is best-effort).
  [[nodiscard]] Status CacheDepthPlane(const PlaneKey& key);

  /// Drops every cached plane belonging to `table` -- the invalidation hook
  /// the catalog's table-version listeners call on reload/ANALYZE.
  void InvalidateCachedPlanes(std::string_view table);

  const PlaneCache& plane_cache() const { return plane_cache_; }

  // --- Render state (glEnable/glDepthFunc/... equivalents) -------------

  /// Mutable render state; core operations snapshot/restore this around
  /// multi-pass algorithms.
  RenderState& state() { return state_; }
  const RenderState& state() const { return state_; }

  void SetAlphaTest(bool enabled, CompareOp func, float ref);
  void SetStencilTest(bool enabled, CompareOp func, uint8_t ref,
                      uint8_t value_mask = 0xff);
  /// StencilOp(Op1, Op2, Op3) exactly as in the paper's Section 3.4.
  void SetStencilOp(StencilOp fail, StencilOp zfail, StencilOp zpass);
  void SetDepthTest(bool enabled, CompareOp func);
  void SetDepthWriteMask(bool enabled);
  void SetColorWriteMask(bool enabled);
  /// Depth bounds in normalized [0,1] coordinates (quantized internally).
  void SetDepthBoundsTest(bool enabled, float zmin = 0.0f, float zmax = 1.0f);

  /// Installs a fragment program for subsequent textured quads (nullptr
  /// restores fixed function). The program must outlive its use.
  void UseProgram(const FragmentProgram* program) { program_ = program; }

  /// The currently installed fragment program (nullptr = fixed function).
  const FragmentProgram* program() const { return program_; }

  /// The current vertex-stage transform and whether the default
  /// window-space stage is active (for state save/restore).
  const Mat4& transform() const { return transform_; }
  bool window_space_vertices() const { return window_space_vertices_; }

  // --- Viewport ----------------------------------------------------------

  /// Limits quads to the first `pixels` pixels (<= framebuffer size).
  /// Database operations set this to the record count.
  [[nodiscard]] Status SetViewport(uint64_t pixels);
  uint64_t viewport_pixels() const { return viewport_pixels_; }

  // --- Clears ------------------------------------------------------------

  void ClearColor(float r, float g, float b, float a);
  void ClearDepth(float d = 1.0f);
  void ClearStencil(uint8_t s = 0);

  // --- Drawing -------------------------------------------------------------

  /// Renders a screen-filling quad at normalized depth `depth` with no bound
  /// texture (fixed-function). This is the paper's RenderQuad(d).
  ///
  /// The quad covers the viewport's pixel range as two scissored rectangles
  /// (full rows plus a partial row), each split into two triangles that run
  /// through the setup engine and rasterizer like any other geometry.
  [[nodiscard]] Status RenderQuad(float depth);

  /// Renders a screen-filling quad textured with the bound texture, running
  /// the installed fragment program per fragment. This is the paper's
  /// RenderTexturedQuad(tex).
  [[nodiscard]] Status RenderTexturedQuad();

  // --- General geometry path (vertex processing engine) ------------------

  /// Sets the clip-space transform applied to DrawTriangles vertices
  /// (modelview-projection). Window coordinates come from the standard
  /// viewport mapping of NDC over the full framebuffer with depth range
  /// [0,1].
  void SetTransform(const Mat4& mvp);

  /// Restores the default vertex stage: positions are interpreted directly
  /// as window coordinates (x, y in pixels, z = window depth), the setup a
  /// host uses for the screen-aligned quads of the database algorithms.
  void ResetTransform();

  /// Draws triangles (consecutive vertex triples) through the full pipeline:
  /// vertex transform, triangle setup/rasterization with the top-left fill
  /// rule, then the per-fragment test chain. The fragment count of the call
  /// is whatever the rasterizer emits.
  [[nodiscard]] Status DrawTriangles(const std::vector<Vertex>& vertices);

  // --- Occlusion queries (GL_NV_occlusion_query) -------------------------

  /// Starts counting fragments that pass all tests.
  [[nodiscard]] Status BeginOcclusionQuery();

  /// Stops counting and returns the pixel pass count; charges the readback
  /// latency to the counters.
  [[nodiscard]] Result<uint64_t> EndOcclusionQuery();

  // --- Readback ------------------------------------------------------------

  /// Reads the stencil plane back to the CPU (charged as a GPU->CPU
  /// transfer). Used to materialize selection results. Fails with
  /// kDeviceLost under injected readback corruption, or with the armed
  /// interrupt status (kCancelled / kDeadlineExceeded).
  [[nodiscard]] Result<std::vector<uint8_t>> ReadStencil();

  /// Reads the depth plane back (quantized values).
  [[nodiscard]] Result<std::vector<uint32_t>> ReadDepth();

  /// Reads one color channel (0=R..3=A) back.
  [[nodiscard]] Result<std::vector<float>> ReadColorChannel(int channel);

  FrameBuffer& framebuffer() { return fb_; }
  const FrameBuffer& framebuffer() const { return fb_; }

  // --- Parallel pixel engines ---------------------------------------------

  /// Sets how many host threads execute quad passes -- the software stand-in
  /// for the FX 5900's parallel pixel pipelines (paper Section 3.1). The
  /// default is ThreadPool::DefaultThreads() ($GPUDB_THREADS or the host's
  /// hardware concurrency); 1 runs every pass inline on the calling thread
  /// (exact legacy behaviour).
  ///
  /// Results are bit-identical for every thread count: each quad pass
  /// touches each pixel at most once, the screen is split into disjoint row
  /// bands, and per-band counters are reduced in fixed band order (see
  /// DESIGN.md section 10).
  [[nodiscard]] Status SetWorkerThreads(int n);
  int worker_threads() const { return worker_threads_; }

  // --- Fault injection (DESIGN.md section 11) -----------------------------

  /// Installs a deterministic fault-injection configuration. A zero rate
  /// (the default) disables injection entirely; the sites then cost one
  /// predicted branch each. Restarts the injector's draw sequence.
  void ConfigureFaults(const FaultConfig& config) {
    injector_.Configure(config);
  }

  FaultInjector& fault_injector() { return injector_; }
  const FaultInjector& fault_injector() const { return injector_; }

  // --- Deadlines and cancellation ------------------------------------------

  /// Arms a wall-clock deadline `ms` milliseconds from now. Every pass
  /// entry, row band, and readback checks it cooperatively; once exceeded,
  /// device entry points return kDeadlineExceeded until DisarmDeadline().
  void ArmDeadline(double ms);

  void DisarmDeadline() { deadline_armed_ = false; }
  bool deadline_armed() const { return deadline_armed_; }

  /// Requests cooperative cancellation of in-flight work. Safe to call
  /// from another thread; the next per-pass or per-band check surfaces
  /// kCancelled. Sticky until ClearInterrupt().
  void RequestCancel() {
    cancel_requested_.store(true, std::memory_order_relaxed);
  }

  /// Clears a pending cancel request (an armed deadline stays armed).
  void ClearInterrupt() {
    cancel_requested_.store(false, std::memory_order_relaxed);
  }

  /// kCancelled if cancellation was requested, kDeadlineExceeded if an
  /// armed deadline has passed, OK otherwise. Cheap when nothing is armed.
  [[nodiscard]] Status CheckInterrupt() const;

  /// Clears transient per-query device state (an open occlusion query and
  /// its count) so an operator can be retried cleanly after a fault left
  /// the device mid-query.
  void ResetQueryState() {
    occlusion_active_ = false;
    occlusion_count_ = 0;
  }

  // --- Counters ------------------------------------------------------------

  const DeviceCounters& counters() const { return counters_; }
  void ResetCounters() { counters_.Reset(); }

 private:
  /// A texture object plus its residency bookkeeping.
  struct TextureSlot {
    Texture data;
    bool resident = false;
    bool ever_resident = false;  ///< Distinguishes first upload from swap-in.
    uint64_t last_use = 0;       ///< LRU stamp

    explicit TextureSlot(Texture t) : data(std::move(t)) {}
  };

  /// Context shared by all fragments of one tile (one row band of one
  /// pass). Counters point at tile-local accumulators so concurrent bands
  /// never touch shared state; FinishPass sees the fixed-order reduction.
  struct PassContext {
    std::array<const Texture*, 4> units = {nullptr, nullptr, nullptr,
                                           nullptr};
    const FragmentProgram* program = nullptr;
    PassRecord* pass = nullptr;
    /// Tile-local pixel pass counter; null when no occlusion query is
    /// active.
    uint64_t* occlusion = nullptr;
    /// Per-pass-constant results hoisted out of the fragment loop for
    /// fixed-function quads (program == nullptr, constant depth): the
    /// quantized quad depth and the alpha-test outcome for the constant
    /// fixed-function alpha of 1.0. Only valid when flat_depth is set
    /// (RenderInternal); DrawTriangles interpolates depth per fragment.
    bool flat_depth = false;
    uint32_t flat_depth_q = 0;
    bool alpha_fail = false;
    /// Deep profiling on for this pass (one Profiler::enabled() load per
    /// pass, taken where the PassRecord is created): gates the per-fragment
    /// kill counters and selects the profiled kernel instantiation.
    bool profile = false;
  };

  /// Swaps a texture into video memory if evicted, evicting LRU textures as
  /// needed, and stamps its LRU slot.
  [[nodiscard]] Status EnsureResident(TextureId id);

  /// Shared quad path for RenderQuad / RenderTexturedQuad: rasterizes the
  /// viewport rectangles at constant depth. `textured` selects whether the
  /// fragment program runs with the bound texture.
  [[nodiscard]] Status RenderInternal(float quad_depth, bool textured);

  /// Runs one rasterized fragment through the program + alpha/stencil/
  /// depth-bounds/depth chain and the buffer writes. Safe to call from
  /// worker threads as long as no two concurrent calls share a pixel or a
  /// PassContext (RenderInternal's row bands guarantee both).
  void ProcessFragment(const RasterFragment& frag, PassContext* ctx);

  /// The stencil/depth-bounds/depth chain and buffer writes for a fragment
  /// that survived the program and alpha stages (shared by the general and
  /// fixed-function fast paths).
  void ProcessTestedFragment(uint64_t i, uint32_t frag_depth_q,
                             const std::array<float, 4>& color,
                             PassContext* ctx);

  /// Specialized kernel for fixed-function quad rows [y_begin, y_end) of
  /// `rect`: semantically identical to emitting every fragment through
  /// ProcessFragment, but with the RenderState, plane pointers, and
  /// counters hoisted into locals so the per-fragment loop stays in
  /// registers. Same threading contract as ProcessFragment.
  void RunFixedRows(const ScissorRect& rect, uint32_t y_begin, uint32_t y_end,
                    PassContext* ctx);

  /// Specialized kernel for quads textured with a depth-copy program
  /// (FragmentProgram::AsDepthCopy): the texel fetch + normalization +
  /// quantization run batched per row with bit-identical results to the
  /// virtual per-fragment Execute path. Same threading contract as
  /// ProcessFragment.
  void RunDepthCopyRows(const ScissorRect& rect, uint32_t y_begin,
                        uint32_t y_end, const CopyToDepthProgram& prog,
                        const Texture& tex, PassContext* ctx);

  /// The worker pool, created on first parallel pass.
  ThreadPool* EnsurePool();

  /// Applies the vertex processing engine to one vertex.
  ScreenVertex ApplyVertexStage(const Vertex& v) const;

  /// Folds a finished pass into the cumulative counters. For a profiled
  /// pass, first closes the fragment ledger (depth_tested / depth_killed /
  /// occlusion_samples are derived from the counted kills) and feeds the
  /// per-label Profiler aggregate. Fails with Status::Internal when the
  /// PassRecord invariants are violated (the simulator miscounted -- every
  /// downstream cost estimate would be corrupt), without recording the bad
  /// pass.
  [[nodiscard]] Status FinishPass(PassRecord pass);

  /// Fills a profiled pass's plane_bytes_read/written from the current
  /// render state and the pass's counted fragments (gpuprof bandwidth
  /// model; see DESIGN.md §13). Call before FinishPass, at the issue site,
  /// while the pass's RenderState is still live.
  void ApplyPlaneTrafficModel(PassRecord* pass) const;

  /// Lock-free check shared by the per-band loops: true when a cancel is
  /// pending or an armed deadline has passed.
  bool InterruptPending() const {
    if (cancel_requested_.load(std::memory_order_relaxed)) return true;
    return deadline_armed_ && std::chrono::steady_clock::now() >= deadline_;
  }

  FrameBuffer fb_;
  RenderState state_;
  std::vector<TextureSlot> textures_;
  std::array<TextureId, 4> bound_units_ = {-1, -1, -1, -1};
  const FragmentProgram* program_ = nullptr;
  uint64_t viewport_pixels_;

  uint64_t video_memory_budget_ = 256ull * 1024 * 1024;  // paper Section 5.1
  uint64_t resident_bytes_ = 0;
  uint64_t lru_clock_ = 0;

  PlaneCache plane_cache_;        // shares video_memory_budget_ with textures
  bool next_pass_fused_ = false;  // one-shot, consumed by RenderInternal

  Mat4 transform_;
  bool window_space_vertices_ = true;  // default vertex stage is identity

  bool occlusion_active_ = false;
  uint64_t occlusion_count_ = 0;

  FaultInjector injector_;
  std::atomic<bool> cancel_requested_{false};
  bool deadline_armed_ = false;
  std::chrono::steady_clock::time_point deadline_;

  int worker_threads_;
  std::unique_ptr<ThreadPool> pool_;

  DeviceCounters counters_;
};

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_DEVICE_H_
