#include "src/gpu/framebuffer.h"

#include <algorithm>

namespace gpudb {
namespace gpu {

void FrameBuffer::ClearColor(float r, float g, float b, float a) {
  for (uint64_t i = 0; i < pixel_count(); ++i) {
    color_[i * 4 + 0] = r;
    color_[i * 4 + 1] = g;
    color_[i * 4 + 2] = b;
    color_[i * 4 + 3] = a;
  }
}

void FrameBuffer::ClearDepth(float d) {
  std::fill(depth_.begin(), depth_.end(), Quantize(d));
}

void FrameBuffer::ClearStencil(uint8_t s) {
  std::fill(stencil_.begin(), stencil_.end(), s);
}

}  // namespace gpu
}  // namespace gpudb
