#ifndef GPUDB_GPU_FAULT_INJECTOR_H_
#define GPUDB_GPU_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace gpudb {
namespace gpu {

/// SplitMix64 finalizer: a full-avalanche mix so consecutive draw indices
/// (and consecutive device ids) map to statistically independent values.
uint64_t SplitMix64(uint64_t x);

/// \brief Configuration for deterministic fault injection.
///
/// `rate` is the per-site fault probability in [0, 1]; 0 disables the
/// injector entirely (the fault sites reduce to a single predicted branch,
/// keeping the per-pass hot path intact). `seed` selects the pseudo-random
/// draw sequence: the injector draws one value per fault site it passes
/// through, always on the thread issuing the device call, so a given
/// (seed, rate) pair produces the same fault sequence for the same sequence
/// of device calls -- at any worker-thread count.
///
/// `device_id` is the failure domain: each device in a gpu::DevicePool draws
/// from its own stream, `seed ^ SplitMix64(device_id)`, so a multi-device
/// fault sweep is reproducible per device regardless of the order sessions
/// dispatch to the pool. Single-device code passes 0 (the default).
struct FaultConfig {
  uint64_t seed = 0;
  double rate = 0.0;
  uint32_t device_id = 0;

  /// The per-domain seed actually used for draws.
  uint64_t effective_seed() const { return seed ^ SplitMix64(device_id); }

  bool enabled() const { return rate > 0.0; }
};

/// \brief Seeded, deterministic fault injector owned by gpu::Device.
///
/// Models the failure modes of a real 2004-era driver stack (DESIGN.md
/// section 11): VRAM allocation failure, per-pass watchdog timeout,
/// transient occlusion-query failure, and readback corruption. Every
/// injected fault surfaces as `Status::DeviceLost` with an "injected:"
/// message prefix -- the transient-fault category that core/resilience.h
/// retries and, past the circuit-breaker threshold, degrades to the CPU
/// baseline.
///
/// Not thread-safe by design: all fault sites are on Device entry points,
/// which are called from the query thread only (worker bands never draw).
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Installs `config` and restarts the draw sequence (draw and fault
  /// tallies reset to zero).
  void Configure(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.rate > 0.0; }

  /// Builds a FaultConfig from $GPUDB_FAULT_SEED / $GPUDB_FAULT_RATE
  /// (absent variables leave the disabled defaults).
  static FaultConfig ConfigFromEnv();

  // --- Fault sites -------------------------------------------------------
  // Each returns OK (almost always) or kDeviceLost when the seeded draw
  // fires, after incrementing the `faults.injected` metrics.

  /// Texture/VRAM allocation of `bytes` bytes.
  [[nodiscard]] Status OnAllocation(uint64_t bytes);

  /// One rendering pass (quad or triangle batch): the watchdog-timeout
  /// model -- a real driver kills passes that hold the chip too long.
  [[nodiscard]] Status OnPass();

  /// NV_occlusion_query result readback: the count is lost in transit.
  [[nodiscard]] Status OnOcclusionReadback();

  /// Buffer/texture readback `what` (stencil/depth/color/texture):
  /// detected transfer corruption.
  [[nodiscard]] Status OnReadback(std::string_view what);

  uint64_t faults_injected() const { return faults_; }
  uint64_t draws() const { return draws_; }

 private:
  /// Advances the draw counter; true when this site faults.
  bool Draw();

  /// Records one injected fault at `site` and wraps it as kDeviceLost.
  [[nodiscard]] Status Inject(const char* site, std::string message);

  FaultConfig config_;
  uint64_t draws_ = 0;
  uint64_t faults_ = 0;
};

/// $GPUDB_VRAM_BUDGET in bytes; 0 when unset/invalid.
uint64_t VramBudgetBytesFromEnv();

/// $GPUDB_DEADLINE_MS in milliseconds; 0 when unset/invalid.
double DeadlineMsFromEnv();

}  // namespace gpu
}  // namespace gpudb

#endif  // GPUDB_GPU_FAULT_INJECTOR_H_
