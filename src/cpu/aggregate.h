#ifndef GPUDB_CPU_AGGREGATE_H_
#define GPUDB_CPU_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"

namespace gpudb {
namespace cpu {

/// \brief CPU reference/baseline aggregations (SUM, COUNT, AVG, MIN, MAX).
/// Integer-valued columns (the only kind Accumulator handles; Section 4.3.3)
/// are summed exactly in 64-bit integers.

/// Exact integer sum of float-encoded integer values.
uint64_t SumInt(const std::vector<float>& values);

/// Sum restricted to a 0/1 selection mask.
uint64_t MaskedSumInt(const std::vector<float>& values,
                      const std::vector<uint8_t>& mask);

uint64_t CountMask(const std::vector<uint8_t>& mask);

Result<float> MinValue(const std::vector<float>& values);
Result<float> MaxValue(const std::vector<float>& values);

/// AVG = SUM / COUNT over selected values.
Result<double> MaskedAvgInt(const std::vector<float>& values,
                            const std::vector<uint8_t>& mask);

}  // namespace cpu
}  // namespace gpudb

#endif  // GPUDB_CPU_AGGREGATE_H_
