#include "src/cpu/xeon_model.h"

#include <cmath>

namespace gpudb {
namespace cpu {

double XeonModel::PredicateScanMs(uint64_t records) const {
  return Ms(static_cast<double>(records) *
            params_.predicate_cycles_per_record);
}

double XeonModel::RangeScanMs(uint64_t records) const {
  return Ms(static_cast<double>(records) * params_.range_cycles_per_record);
}

double XeonModel::MultiAttributeScanMs(uint64_t records, int conjuncts) const {
  return Ms(static_cast<double>(records) * params_.conjunct_cycles_per_record *
            conjuncts);
}

double XeonModel::SemilinearScanMs(uint64_t records) const {
  return Ms(static_cast<double>(records) *
            params_.semilinear_cycles_per_record);
}

double XeonModel::QuickSelectMs(uint64_t records) const {
  return Ms(static_cast<double>(records) *
            params_.quickselect_cycles_per_record);
}

double XeonModel::MaskedQuickSelectMs(uint64_t records,
                                      uint64_t selected) const {
  return Ms(static_cast<double>(records) * params_.copy_cycles_per_record +
            static_cast<double>(selected) *
                params_.quickselect_cycles_per_record);
}

double XeonModel::SumMs(uint64_t records) const {
  return Ms(static_cast<double>(records) * params_.sum_cycles_per_record);
}

double XeonModel::SortMs(uint64_t records) const {
  if (records < 2) return 0.0;
  const double levels = std::log2(static_cast<double>(records));
  return Ms(static_cast<double>(records) * levels *
            params_.sort_cycles_per_record_per_level);
}

}  // namespace cpu
}  // namespace gpudb
