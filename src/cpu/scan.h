#ifndef GPUDB_CPU_SCAN_H_
#define GPUDB_CPU_SCAN_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/db/table.h"
#include "src/gpu/types.h"
#include "src/predicate/cnf.h"

namespace gpudb {
namespace cpu {

/// \brief Optimized CPU baselines for the paper's comparisons (Section 5.2).
///
/// The paper's baseline was compiled with the Intel 7.1 compiler with
/// vectorization, multi-threading, and IPO; the key property carried over
/// here is that the scans are *branch-free* (selection results are computed
/// with comparison masks, not conditional jumps), which is what makes them
/// SIMD-friendly and is the behaviour the paper's CPU timings reflect.
///
/// All functions write a 0/1 byte per record into `out` (resized by the
/// callee) and return the number of selected records.

/// Single predicate `value op constant` over one column.
uint64_t PredicateScan(const std::vector<float>& values, gpu::CompareOp op,
                       float constant, std::vector<uint8_t>* out);

/// Range query `low <= value <= high`.
uint64_t RangeScan(const std::vector<float>& values, float low, float high,
                   std::vector<uint8_t>* out);

/// Attribute-attribute comparison `a op b`.
uint64_t AttrCompareScan(const std::vector<float>& a,
                         const std::vector<float>& b, gpu::CompareOp op,
                         std::vector<uint8_t>* out);

/// Semi-linear query `dot(weights, record) op b` over up to four columns.
uint64_t SemilinearScan(const std::vector<const std::vector<float>*>& columns,
                        const std::array<float, 4>& weights, gpu::CompareOp op,
                        float b, std::vector<uint8_t>* out);

/// Polynomial query `sum_c w_c * col_c^e_c op b` (the Section 4.1.2
/// extension; reference for core::PolynomialSelect).
uint64_t PolynomialScan(const std::vector<const std::vector<float>*>& columns,
                        const std::array<float, 4>& weights,
                        const std::array<int, 4>& exponents, gpu::CompareOp op,
                        float b, std::vector<uint8_t>* out);

/// Full CNF evaluation over a table; the reference the GPU path is
/// cross-checked against in every test.
Result<uint64_t> CnfScan(const db::Table& table, const predicate::Cnf& cnf,
                         std::vector<uint8_t>* out);

}  // namespace cpu
}  // namespace gpudb

#endif  // GPUDB_CPU_SCAN_H_
