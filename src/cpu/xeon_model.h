#ifndef GPUDB_CPU_XEON_MODEL_H_
#define GPUDB_CPU_XEON_MODEL_H_

#include <cstdint>

namespace gpudb {
namespace cpu {

/// \brief Analytic timing model of the paper's CPU testbed (dual 2.8 GHz
/// Intel Xeon, Intel compiler 7.1 with vectorization/multithreading/IPO).
///
/// Like gpu::PerfModel, this converts work counts into simulated 2004
/// milliseconds so the benchmark harness can reproduce the *shape* of the
/// paper's CPU-vs-GPU figures. Per-record cycle costs are back-solved from
/// the speedup factors the paper reports (DESIGN.md section 6):
///
///  * predicate scan: 16.8 cycles/record (6.0 ms per million) makes Figure
///    3's "3x overall / ~20x compute-only" hold against the GPU model;
///  * range scan: 2 predicates' worth, 31 cycles/record (11.1 ms/M),
///    matching Figure 4's "5.5x overall / ~40x compute-only";
///  * conjunctive scan: 14 cycles/record/conjunct -- slightly cheaper per
///    conjunct than a standalone predicate because the multi-attribute loop
///    amortizes load/store overhead; lands between Figure 5's "nearly 2x
///    overall" and "nearly 20x compute-only";
///  * semi-linear scan: 28 cycles/record (4 MUL + 3 ADD + compare + store,
///    memory bound), matching Figure 6's ~9x;
///  * QuickSelect: 70 expected cycles/record (branchy, data-dependent,
///    multiple partitioning passes), matching Figures 7-8's ~2x;
///  * sum: 3.9 cycles/record (bandwidth-limited SIMD reduction), making the
///    GPU Accumulator ~20x *slower* as in Figure 10.
struct XeonModelParams {
  double clock_hz = 2.8e9;
  double predicate_cycles_per_record = 16.8;
  double range_cycles_per_record = 31.0;
  double conjunct_cycles_per_record = 14.0;
  double semilinear_cycles_per_record = 28.0;
  double quickselect_cycles_per_record = 70.0;
  double sum_cycles_per_record = 3.9;
  /// memcpy-style compaction used by the masked QuickSelect baseline
  /// (Section 5.9 Test 3 copies valid records into a fresh array).
  double copy_cycles_per_record = 2.0;
  /// Comparison sort (std::sort-style introsort): cycles per element per
  /// log2(n) level; ~36 ms for a million floats on the 2004 Xeon.
  double sort_cycles_per_record_per_level = 5.0;
};

/// Converts record counts into simulated dual-Xeon milliseconds.
class XeonModel {
 public:
  XeonModel() = default;
  explicit XeonModel(const XeonModelParams& params) : params_(params) {}

  const XeonModelParams& params() const { return params_; }

  double PredicateScanMs(uint64_t records) const;
  double RangeScanMs(uint64_t records) const;
  /// Conjunction of `conjuncts` single-attribute predicates.
  double MultiAttributeScanMs(uint64_t records, int conjuncts) const;
  double SemilinearScanMs(uint64_t records) const;
  double QuickSelectMs(uint64_t records) const;
  /// QuickSelect over a masked subset: compaction copy + select over the
  /// survivors. The paper observes this costs about the same as a full
  /// QuickSelect (Section 5.9 Test 3).
  double MaskedQuickSelectMs(uint64_t records, uint64_t selected) const;
  double SumMs(uint64_t records) const;
  /// n log2(n) comparison sort.
  double SortMs(uint64_t records) const;

 private:
  double Ms(double cycles) const { return cycles / params_.clock_hz * 1e3; }

  XeonModelParams params_;
};

}  // namespace cpu
}  // namespace gpudb

#endif  // GPUDB_CPU_XEON_MODEL_H_
