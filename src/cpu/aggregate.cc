#include "src/cpu/aggregate.h"

#include <algorithm>

namespace gpudb {
namespace cpu {

uint64_t SumInt(const std::vector<float>& values) {
  uint64_t sum = 0;
  for (float v : values) sum += static_cast<uint64_t>(v);
  return sum;
}

uint64_t MaskedSumInt(const std::vector<float>& values,
                      const std::vector<uint8_t>& mask) {
  uint64_t sum = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    // Branch-free: multiply by the 0/1 mask.
    sum += static_cast<uint64_t>(values[i]) * mask[i];
  }
  return sum;
}

uint64_t CountMask(const std::vector<uint8_t>& mask) {
  uint64_t count = 0;
  for (uint8_t m : mask) count += m;
  return count;
}

Result<float> MinValue(const std::vector<float>& values) {
  if (values.empty()) return Status::InvalidArgument("min of empty input");
  return *std::min_element(values.begin(), values.end());
}

Result<float> MaxValue(const std::vector<float>& values) {
  if (values.empty()) return Status::InvalidArgument("max of empty input");
  return *std::max_element(values.begin(), values.end());
}

Result<double> MaskedAvgInt(const std::vector<float>& values,
                            const std::vector<uint8_t>& mask) {
  if (values.size() != mask.size()) {
    return Status::InvalidArgument("mask length does not match values");
  }
  const uint64_t count = CountMask(mask);
  if (count == 0) {
    return Status::InvalidArgument("AVG over empty selection");
  }
  return static_cast<double>(MaskedSumInt(values, mask)) /
         static_cast<double>(count);
}

}  // namespace cpu
}  // namespace gpudb
