#ifndef GPUDB_CPU_QUICKSELECT_H_
#define GPUDB_CPU_QUICKSELECT_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"

namespace gpudb {
namespace cpu {

/// \brief Expected-linear-time selection (Hoare's FIND / QuickSelect), the
/// paper's CPU comparator for KthLargest (Section 5.9, citing [14]).
///
/// Finds the k-th largest value (k is 1-based: k=1 is the maximum).
/// The input is copied because the algorithm rearranges data -- the exact
/// cost the paper's GPU algorithm is designed to avoid ("Most of these
/// algorithms require data rearrangement, which is extremely expensive on
/// current GPUs", Section 4.3.2).
Result<float> QuickSelectLargest(const std::vector<float>& values, uint64_t k,
                                 uint64_t seed = 12345);

/// k-th smallest (k=1 is the minimum).
Result<float> QuickSelectSmallest(const std::vector<float>& values, uint64_t k,
                                  uint64_t seed = 12345);

/// Median via QuickSelect: the ceil(n/2)-th smallest value.
Result<float> Median(const std::vector<float>& values);

/// QuickSelect restricted to values selected by a 0/1 mask: the paper's
/// Section 5.9 Test 3 baseline ("we have copied the valid data into an array
/// and passed it as a parameter to QuickSelect").
Result<float> MaskedQuickSelectLargest(const std::vector<float>& values,
                                       const std::vector<uint8_t>& mask,
                                       uint64_t k);

}  // namespace cpu
}  // namespace gpudb

#endif  // GPUDB_CPU_QUICKSELECT_H_
