#include "src/cpu/quickselect.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/random.h"

namespace gpudb {
namespace cpu {

namespace {

/// In-place QuickSelect for the k-th smallest (0-based order statistic) with
/// randomized pivots (expected linear time).
float SelectKthSmallest(std::vector<float>* data, uint64_t k, Random* rng) {
  size_t lo = 0;
  size_t hi = data->size();  // half-open [lo, hi)
  std::vector<float>& a = *data;
  for (;;) {
    if (hi - lo <= 2) {
      if (hi - lo == 2 && a[lo] > a[lo + 1]) std::swap(a[lo], a[lo + 1]);
      return a[k];
    }
    const size_t pivot_idx = lo + rng->NextUint64(hi - lo);
    const float pivot = a[pivot_idx];
    // 3-way partition (Dutch national flag) for duplicate-heavy inputs.
    size_t lt = lo, i = lo, gt = hi;
    while (i < gt) {
      if (a[i] < pivot) {
        std::swap(a[i++], a[lt++]);
      } else if (a[i] > pivot) {
        std::swap(a[i], a[--gt]);
      } else {
        ++i;
      }
    }
    if (k < lt) {
      hi = lt;
    } else if (k >= gt) {
      lo = gt;
    } else {
      return pivot;  // a[lt..gt) all equal the pivot.
    }
  }
}

}  // namespace

Result<float> QuickSelectLargest(const std::vector<float>& values, uint64_t k,
                                 uint64_t seed) {
  if (values.empty()) {
    return Status::InvalidArgument("QuickSelect on empty input");
  }
  if (k == 0 || k > values.size()) {
    return Status::OutOfRange("k=" + std::to_string(k) + " out of range [1," +
                              std::to_string(values.size()) + "]");
  }
  std::vector<float> copy = values;
  Random rng(seed);
  // k-th largest (1-based) == (n-k)-th smallest (0-based).
  return SelectKthSmallest(&copy, values.size() - k, &rng);
}

Result<float> QuickSelectSmallest(const std::vector<float>& values, uint64_t k,
                                  uint64_t seed) {
  if (values.empty()) {
    return Status::InvalidArgument("QuickSelect on empty input");
  }
  if (k == 0 || k > values.size()) {
    return Status::OutOfRange("k=" + std::to_string(k) + " out of range [1," +
                              std::to_string(values.size()) + "]");
  }
  std::vector<float> copy = values;
  Random rng(seed);
  return SelectKthSmallest(&copy, k - 1, &rng);
}

Result<float> Median(const std::vector<float>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("median of empty input");
  }
  return QuickSelectSmallest(values, (values.size() + 1) / 2);
}

Result<float> MaskedQuickSelectLargest(const std::vector<float>& values,
                                       const std::vector<uint8_t>& mask,
                                       uint64_t k) {
  if (values.size() != mask.size()) {
    return Status::InvalidArgument("mask length does not match values");
  }
  std::vector<float> selected;
  selected.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (mask[i] != 0) selected.push_back(values[i]);
  }
  if (selected.empty()) {
    return Status::InvalidArgument("mask selects no values");
  }
  if (k == 0 || k > selected.size()) {
    return Status::OutOfRange("k=" + std::to_string(k) +
                              " out of range for " +
                              std::to_string(selected.size()) +
                              " selected values");
  }
  Random rng(12345);
  return SelectKthSmallest(&selected, selected.size() - k, &rng);
}

}  // namespace cpu
}  // namespace gpudb
