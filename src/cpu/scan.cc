#include "src/cpu/scan.h"

namespace gpudb {
namespace cpu {

namespace {

/// Branch-free comparison kernel: specialized per operator so the inner loop
/// contains a single data-independent compare (auto-vectorizable).
template <typename Cmp>
uint64_t ScanWith(const std::vector<float>& values, Cmp cmp,
                  std::vector<uint8_t>* out) {
  out->resize(values.size());
  uint64_t count = 0;
  uint8_t* dst = out->data();
  const float* src = values.data();
  const size_t n = values.size();
  for (size_t i = 0; i < n; ++i) {
    const uint8_t m = cmp(src[i]) ? 1 : 0;
    dst[i] = m;
    count += m;
  }
  return count;
}

}  // namespace

uint64_t PredicateScan(const std::vector<float>& values, gpu::CompareOp op,
                       float constant, std::vector<uint8_t>* out) {
  using gpu::CompareOp;
  switch (op) {
    case CompareOp::kLess:
      return ScanWith(values, [=](float v) { return v < constant; }, out);
    case CompareOp::kLessEqual:
      return ScanWith(values, [=](float v) { return v <= constant; }, out);
    case CompareOp::kEqual:
      return ScanWith(values, [=](float v) { return v == constant; }, out);
    case CompareOp::kGreaterEqual:
      return ScanWith(values, [=](float v) { return v >= constant; }, out);
    case CompareOp::kGreater:
      return ScanWith(values, [=](float v) { return v > constant; }, out);
    case CompareOp::kNotEqual:
      return ScanWith(values, [=](float v) { return v != constant; }, out);
    case CompareOp::kAlways:
      return ScanWith(values, [](float) { return true; }, out);
    case CompareOp::kNever:
      return ScanWith(values, [](float) { return false; }, out);
  }
  return 0;
}

uint64_t RangeScan(const std::vector<float>& values, float low, float high,
                   std::vector<uint8_t>* out) {
  return ScanWith(
      values, [=](float v) { return v >= low && v <= high; }, out);
}

uint64_t AttrCompareScan(const std::vector<float>& a,
                         const std::vector<float>& b, gpu::CompareOp op,
                         std::vector<uint8_t>* out) {
  out->resize(a.size());
  uint64_t count = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const uint8_t m = gpu::EvalCompare(op, a[i], b[i]) ? 1 : 0;
    (*out)[i] = m;
    count += m;
  }
  return count;
}

uint64_t SemilinearScan(const std::vector<const std::vector<float>*>& columns,
                        const std::array<float, 4>& weights, gpu::CompareOp op,
                        float b, std::vector<uint8_t>* out) {
  const size_t n = columns.empty() ? 0 : columns[0]->size();
  out->assign(n, 0);
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    float dot = 0.0f;
    for (size_t c = 0; c < columns.size(); ++c) {
      dot += weights[c] * (*columns[c])[i];
    }
    const uint8_t m = gpu::EvalCompare(op, dot, b) ? 1 : 0;
    (*out)[i] = m;
    count += m;
  }
  return count;
}

uint64_t PolynomialScan(const std::vector<const std::vector<float>*>& columns,
                        const std::array<float, 4>& weights,
                        const std::array<int, 4>& exponents, gpu::CompareOp op,
                        float b, std::vector<uint8_t>* out) {
  const size_t n = columns.empty() ? 0 : columns[0]->size();
  out->assign(n, 0);
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    float poly = 0.0f;
    for (size_t c = 0; c < columns.size(); ++c) {
      if (weights[c] == 0.0f) continue;
      float power = 1.0f;
      for (int e = 0; e < exponents[c]; ++e) power *= (*columns[c])[i];
      poly += weights[c] * power;
    }
    const uint8_t m = gpu::EvalCompare(op, poly, b) ? 1 : 0;
    (*out)[i] = m;
    count += m;
  }
  return count;
}

Result<uint64_t> CnfScan(const db::Table& table, const predicate::Cnf& cnf,
                         std::vector<uint8_t>* out) {
  const size_t n = table.num_rows();
  for (const auto& clause : cnf.clauses) {
    if (clause.empty()) {
      return Status::InvalidArgument("CNF contains an empty clause");
    }
    for (const auto& p : clause) {
      if (p.attr >= table.num_columns() ||
          (p.rhs_is_attr && p.rhs_attr >= table.num_columns())) {
        return Status::OutOfRange("CNF references a nonexistent column");
      }
    }
  }
  // mask := AND over clauses of (OR over clause predicates), evaluated
  // branch-free one predicate at a time over per-clause scratch masks.
  std::vector<uint8_t> mask(n, 1);
  std::vector<uint8_t> clause_mask;
  std::vector<uint8_t> pred_mask;
  for (const auto& clause : cnf.clauses) {
    clause_mask.assign(n, 0);
    for (const predicate::SimplePredicate& p : clause) {
      if (p.rhs_is_attr) {
        AttrCompareScan(table.column(p.attr).values(),
                        table.column(p.rhs_attr).values(), p.op, &pred_mask);
      } else {
        PredicateScan(table.column(p.attr).values(), p.op, p.constant,
                      &pred_mask);
      }
      for (size_t i = 0; i < n; ++i) {
        clause_mask[i] |= pred_mask[i];
      }
    }
    for (size_t i = 0; i < n; ++i) {
      mask[i] &= clause_mask[i];
    }
  }
  uint64_t count = 0;
  for (uint8_t m : mask) count += m;
  *out = std::move(mask);
  return count;
}

}  // namespace cpu
}  // namespace gpudb
