// Figure 10: SUM of an attribute via the Accumulator (one counting pass per
// bit) vs the CPU's SIMD sum. This is the paper's headline *negative* result:
// the GPU is ~20x slower because 2004 fragment programs lack integer
// arithmetic, forcing a 5-instruction TestBit program per bit position.

#include "bench/bench_util.h"
#include "src/core/accumulator.h"
#include "src/cpu/aggregate.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 10", "SUM(data_count) via Accumulator, sweeping records",
              "GPU ~20x SLOWER than the compiler-optimized CPU sum");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  const int bits = column.bit_width();
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;

  for (size_t n : RecordSweep()) {
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);
    device->ResetCounters();
    Timer gpu_timer;
    auto gpu_sum = core::Accumulate(device.get(), attr.texture, 0, bits);
    const double gpu_wall = gpu_timer.ElapsedMs();
    if (!gpu_sum.ok()) return 1;
    const gpu::GpuTimeBreakdown b = gpu_model.Estimate(device->counters());

    const std::vector<float> values = Slice(column, n);
    Timer cpu_timer;
    const uint64_t cpu_sum = cpu::SumInt(values);
    const double cpu_wall = cpu_timer.ElapsedMs();

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = b.TotalMs();
    row.gpu_model_compute_ms = b.ComputeMs();
    row.cpu_model_ms = cpu_model.SumMs(n);
    row.gpu_wall_ms = gpu_wall;
    row.cpu_wall_ms = cpu_wall;
    row.check_passed = gpu_sum.ValueOrDie() == cpu_sum;
    PrintRow(row);
  }
  PrintFooter(
      "The speedup column is ~0.05x: the GPU loses by ~20x exactly as in "
      "Figure 10 (19 passes x 5 instructions per fragment vs a "
      "bandwidth-bound SIMD reduction). This motivates the co-processor "
      "planner's CPU routing for SUM/AVG.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
