// Figure 3: single-predicate evaluation at 60% selectivity, GPU vs CPU,
// sweeping the record count. The paper reports the GPU ~3x faster overall
// (including the copy-to-depth time) and ~20x faster on computation alone.

#include "bench/bench_util.h"
#include "src/core/compare.h"
#include "src/cpu/scan.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 3",
              "predicate evaluation (data_count > t), 60% selectivity",
              "GPU ~3x faster overall, ~20x faster computation-only");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;

  for (size_t n : RecordSweep()) {
    const float threshold = ThresholdForSelectivity(column, n, 0.6);
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);

    device->ResetCounters();
    Timer gpu_timer;
    auto gpu_count = core::CompareSelect(device.get(), attr,
                                         gpu::CompareOp::kGreater, threshold);
    const double gpu_wall = gpu_timer.ElapsedMs();
    if (!gpu_count.ok()) return 1;
    const gpu::GpuTimeBreakdown b = gpu_model.Estimate(device->counters());

    const std::vector<float> values = Slice(column, n);
    std::vector<uint8_t> mask;
    Timer cpu_timer;
    const uint64_t cpu_count = cpu::PredicateScan(
        values, gpu::CompareOp::kGreater, threshold, &mask);
    const double cpu_wall = cpu_timer.ElapsedMs();

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = b.TotalMs();
    // "Considering only computation time" excludes the copy pass: charge
    // just the comparison quad + occlusion readback.
    const gpu::PassRecord& compare_pass = device->counters().pass_log.back();
    row.gpu_model_compute_ms = gpu_model.PassFillMs(compare_pass) +
                               gpu_model.params().pass_setup_ms +
                               gpu_model.params().occlusion_readback_ms;
    row.cpu_model_ms = cpu_model.PredicateScanMs(n);
    row.gpu_wall_ms = gpu_wall;
    row.cpu_wall_ms = cpu_wall;
    row.check_passed = gpu_count.ValueOrDie() == cpu_count;
    PrintRow(row);
  }
  PrintFooter(
      "Overall model speedup ~3x and compute-only ~16-20x across the sweep, "
      "reproducing Figure 3's shape (copy time dominates the GPU total).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
