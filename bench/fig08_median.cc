// Figure 8: median computation (KthLargest with k = n/2) vs QuickSelect,
// sweeping the record count. The paper reports the GPU ~2x faster overall
// and ~2.5x computation-only.

#include "bench/bench_util.h"
#include "src/core/kth_largest.h"
#include "src/cpu/quickselect.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 8", "median of data_count, sweeping record count",
              "GPU ~2x faster overall (~2.5x compute) than QuickSelect");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  const int bits = column.bit_width();
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;

  for (size_t n : RecordSweep()) {
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);
    device->ResetCounters();
    Timer gpu_timer;
    auto gpu_v = core::MedianValue(device.get(), attr, bits);
    const double gpu_wall = gpu_timer.ElapsedMs();
    if (!gpu_v.ok()) return 1;
    const gpu::GpuTimeBreakdown b = gpu_model.Estimate(device->counters());

    const std::vector<float> values = Slice(column, n);
    Timer cpu_timer;
    auto cpu_v = cpu::Median(values);
    const double cpu_wall = cpu_timer.ElapsedMs();
    if (!cpu_v.ok()) return 1;

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = b.TotalMs();
    row.gpu_model_compute_ms = b.ComputeMs();
    row.cpu_model_ms = cpu_model.QuickSelectMs(n);
    row.gpu_wall_ms = gpu_wall;
    row.cpu_wall_ms = cpu_wall;
    row.check_passed =
        gpu_v.ValueOrDie() == static_cast<uint32_t>(cpu_v.ValueOrDie());
    PrintRow(row);
  }
  PrintFooter(
      "Both sides scale linearly in n; the GPU stays ~2x ahead across the "
      "sweep as in Figure 8 (19 comparison passes + occlusion readbacks vs "
      "QuickSelect's data rearrangement).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
