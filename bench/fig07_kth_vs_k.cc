// Figure 7: time to compute the k-th largest data_count value on ~250K
// records as a function of k. The paper's key observation: the GPU time is
// constant in k (one pass per bit, independent of k) and ~2x faster overall
// (~3x computation-only) than CPU QuickSelect.

#include "bench/bench_util.h"
#include "src/core/kth_largest.h"
#include "src/cpu/quickselect.h"

namespace gpudb {
namespace bench {
namespace {

constexpr size_t kRecords = 250'000;

int Run() {
  PrintHeader("Figure 7",
              "k-th largest data_count on 250K records, sweeping k",
              "GPU time constant in k; ~2x overall / ~3x compute vs "
              "QuickSelect");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  const int bits = column.bit_width();  // 19, as in the paper
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;
  const std::vector<float> values = Slice(column, kRecords);

  for (uint64_t k : {uint64_t{1}, uint64_t{10}, uint64_t{100}, uint64_t{1000},
                     uint64_t{10000}, uint64_t{50000}, uint64_t{125000},
                     uint64_t{250000}}) {
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, kRecords);
    device->ResetCounters();
    Timer gpu_timer;
    auto gpu_v = core::KthLargest(device.get(), attr, bits, k);
    const double gpu_wall = gpu_timer.ElapsedMs();
    if (!gpu_v.ok()) return 1;
    const gpu::GpuTimeBreakdown b = gpu_model.Estimate(device->counters());

    Timer cpu_timer;
    auto cpu_v = cpu::QuickSelectLargest(values, k);
    const double cpu_wall = cpu_timer.ElapsedMs();
    if (!cpu_v.ok()) return 1;

    ResultRow row;
    row.label = "k=" + std::to_string(k);
    row.gpu_model_total_ms = b.TotalMs();
    row.gpu_model_compute_ms = b.ComputeMs() - 0;  // copy included per paper
    row.cpu_model_ms = cpu_model.QuickSelectMs(kRecords);
    row.gpu_wall_ms = gpu_wall;
    row.cpu_wall_ms = cpu_wall;
    row.check_passed =
        gpu_v.ValueOrDie() == static_cast<uint32_t>(cpu_v.ValueOrDie());
    PrintRow(row);
  }
  PrintFooter(
      "GPU rows are identical for every k (19 bit-passes regardless of k), "
      "reproducing Figure 7's flat curve; the CPU model is flat too because "
      "QuickSelect's expected cost depends on n, not k.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
