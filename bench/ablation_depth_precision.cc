// Ablation: depth-buffer precision (paper Section 6.1, "Precision: Current
// GPUs have depth buffers with a maximum of 24 bits. This limited precision
// can be an issue."). The 19-bit data_count attribute is normalized by its
// own domain (as a host must) and rendered into depth buffers of shrinking
// precision: below 19 bits, 2^(19-bits) distinct values collapse into each
// depth code. Threshold comparisons then wobble by up to one code's
// population and equality predicates count entire collision buckets.

#include <cmath>

#include "bench/bench_util.h"
#include "src/core/compare.h"
#include "src/cpu/scan.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Ablation: depth-buffer precision",
              "19-bit data on 12..24-bit depth buffers",
              "\"depth buffers with a maximum of 24 bits ... can be an "
              "issue\" (Section 6.1)");
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  constexpr size_t kRecords = 250'000;
  const std::vector<float> values = Slice(column, kRecords);
  // The data needs 19 bits; the host normalizes by the data domain.
  const core::DepthEncoding encoding = core::DepthEncoding::ExactInt(19);

  const float threshold = ThresholdForSelectivity(column, kRecords, 0.5);
  std::vector<uint8_t> mask;
  const uint64_t exact_gt = cpu::PredicateScan(
      values, gpu::CompareOp::kGreater, threshold, &mask);
  // An equality probe on a popular value.
  const float probe = column.Percentile(0.5);
  const uint64_t exact_eq =
      cpu::PredicateScan(values, gpu::CompareOp::kEqual, probe, &mask);

  std::printf("%-12s %12s %12s %10s %12s %12s\n", "depth_bits", "gt_count",
              "gt_error", "eq_count", "eq_exact", "vals/code");
  for (int bits : {12, 14, 16, 18, 19, 24}) {
    gpu::Device device(1000, 1000, bits);
    core::AttributeBinding attr = UploadColumn(&device, column, kRecords);
    attr.encoding = encoding;
    auto gt = core::Compare(&device, attr, gpu::CompareOp::kGreater,
                            threshold);
    auto eq = core::Compare(&device, attr, gpu::CompareOp::kEqual, probe);
    if (!gt.ok() || !eq.ok()) return 1;
    const int64_t gt_err = static_cast<int64_t>(gt.ValueOrDie()) -
                           static_cast<int64_t>(exact_gt);
    const double vals_per_code =
        bits >= 19 ? 1.0 : std::exp2(19 - bits);
    std::printf("%-12d %12llu %12lld %10llu %12llu %12.0f\n", bits,
                static_cast<unsigned long long>(gt.ValueOrDie()),
                static_cast<long long>(gt_err),
                static_cast<unsigned long long>(eq.ValueOrDie()),
                static_cast<unsigned long long>(exact_eq), vals_per_code);
  }
  PrintFooter(
      "At >= 19 bits every value owns its code and both predicates are "
      "exact. Below that, ~2^(19-bits) values share each code: the "
      "threshold count drifts by the records caught in the boundary code, "
      "and the equality predicate balloons to the whole collision bucket -- "
      "why the paper calls 24-bit depth a real limitation for wide "
      "attributes.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
