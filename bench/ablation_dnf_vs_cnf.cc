// Ablation: evaluating a naturally-disjunctive query through EvalDnf (the
// paper's "easily modified" variant of Routine 4.3) versus converting it to
// CNF first. CNF conversion of an OR-of-ANDs multiplies clauses
// (m^k growth), so the DNF path wins exactly where the query is born
// disjunctive -- e.g. alert rules that union several conjunctive patterns.

#include "bench/bench_util.h"
#include "src/core/eval_cnf.h"
#include "src/predicate/cnf.h"
#include "src/predicate/expr.h"

namespace gpudb {
namespace bench {
namespace {

using gpu::CompareOp;
using predicate::Expr;
using predicate::ExprPtr;

int Run() {
  PrintHeader("Ablation: DNF vs CNF evaluation",
              "OR of k two-predicate conjunctions, 1M records",
              "\"We can easily modify our algorithm for handling a boolean "
              "expression represented as a DNF\" (Section 4.2)");
  const db::Table& table = TcpIpTable();
  constexpr size_t n = 1'000'000;
  gpu::PerfModel model;
  std::printf("%-8s %12s %12s %14s %14s %10s %8s\n", "k-terms", "dnf_preds",
              "cnf_preds", "dnf_model_ms", "cnf_model_ms", "ratio", "check");

  for (int k = 2; k <= 4; ++k) {
    // Alert rule: OR over k patterns "attr_i > t_i AND attr_j <= u_j".
    ExprPtr expr;
    for (int i = 0; i < k; ++i) {
      const size_t a = i % 4;
      const size_t b = (i + 1) % 4;
      const float ta = ThresholdForSelectivity(table.column(a), n, 0.3);
      const float tb = ThresholdForSelectivity(table.column(b), n, 0.7);
      ExprPtr pattern = Expr::And(Expr::Pred(a, CompareOp::kGreater, ta),
                                  Expr::Pred(b, CompareOp::kLessEqual, tb));
      expr = expr == nullptr ? pattern : Expr::Or(expr, pattern);
    }
    auto dnf = predicate::ToDnf(expr);
    auto cnf = predicate::ToCnf(expr);
    if (!dnf.ok() || !cnf.ok()) return 1;

    auto device = MakeDevice();
    std::vector<core::AttributeBinding> bindings;
    for (size_t c = 0; c < 4; ++c) {
      bindings.push_back(UploadColumn(device.get(), table.column(c), n));
    }
    auto lower = [&](const predicate::SimplePredicate& p) {
      return core::GpuPredicate::DepthCompare(bindings[p.attr], p.op,
                                              p.constant);
    };
    std::vector<core::GpuTerm> terms;
    for (const auto& term : dnf.ValueOrDie().terms) {
      core::GpuTerm t;
      for (const auto& p : term) t.push_back(lower(p));
      terms.push_back(t);
    }
    std::vector<core::GpuClause> clauses;
    for (const auto& clause : cnf.ValueOrDie().clauses) {
      core::GpuClause c;
      for (const auto& p : clause) c.push_back(lower(p));
      clauses.push_back(c);
    }

    device->ResetCounters();
    auto dnf_sel = core::EvalDnf(device.get(), terms);
    if (!dnf_sel.ok()) return 1;
    const double dnf_ms = model.EstimateMs(device->counters());

    device->ResetCounters();
    auto cnf_sel = core::EvalCnf(device.get(), clauses);
    if (!cnf_sel.ok()) return 1;
    const double cnf_ms = model.EstimateMs(device->counters());

    std::printf("%-8d %12zu %12zu %14.3f %14.3f %9.2fx %8s\n", k,
                dnf.ValueOrDie().predicate_count(),
                cnf.ValueOrDie().predicate_count(), dnf_ms, cnf_ms,
                cnf_ms / dnf_ms,
                dnf_sel.ValueOrDie().count == cnf_sel.ValueOrDie().count
                    ? "OK"
                    : "FAIL");
  }
  PrintFooter(
      "The CNF predicate count grows as 2^k while the DNF stays at 2k, and "
      "the model time follows: pick the normal form matching the query's "
      "natural shape.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
