// Section 5.1's second benchmark database: "The census database consists of
// 360K records. ... Our performance results on the census data are
// consistent with the results obtained on the TCP/IP database." This bench
// re-runs the headline experiments (predicate, range, semi-linear, median,
// sum) on the census table and reports the same speedup columns so the
// consistency claim is checkable.

#include <algorithm>

#include "bench/bench_util.h"
#include "src/core/accumulator.h"
#include "src/core/compare.h"
#include "src/core/kth_largest.h"
#include "src/core/range.h"
#include "src/core/semilinear.h"
#include "src/cpu/aggregate.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/db/datagen.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Section 5.1 consistency check",
              "headline experiments on the 360K-record census table",
              "\"Our performance results on the census data are consistent "
              "with the results obtained on the TCP/IP database\"");
  auto census_r = db::MakeCensusTable(360'000);
  if (!census_r.ok()) return 1;
  const db::Table& census = census_r.ValueOrDie();
  const db::Column& income = census.column(0);
  const size_t n = census.num_rows();
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;
  PrintRowHeader();

  {  // Predicate at 60% selectivity (compare with Figure 3's ~3x).
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), income, n);
    const float t = ThresholdForSelectivity(income, n, 0.6);
    device->ResetCounters();
    auto count = core::CompareSelect(device.get(), attr,
                                     gpu::CompareOp::kGreater, t);
    if (!count.ok()) return 1;
    std::vector<uint8_t> mask;
    const uint64_t expected = cpu::PredicateScan(
        income.values(), gpu::CompareOp::kGreater, t, &mask);
    ResultRow row;
    row.label = "predicate";
    row.gpu_model_total_ms = gpu_model.EstimateMs(device->counters());
    row.gpu_model_compute_ms = gpu_model.Estimate(device->counters()).fill_ms;
    row.cpu_model_ms = cpu_model.PredicateScanMs(n);
    row.check_passed = count.ValueOrDie() == expected;
    PrintRow(row);
  }
  {  // Range at 60% selectivity (Figure 4's ~5.5x).
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), income, n);
    const float lo = income.Percentile(0.2);
    const float hi = income.Percentile(0.8);
    device->ResetCounters();
    auto count = core::RangeSelect(device.get(), attr, lo, hi);
    if (!count.ok()) return 1;
    std::vector<uint8_t> mask;
    const uint64_t expected = cpu::RangeScan(income.values(), lo, hi, &mask);
    ResultRow row;
    row.label = "range";
    row.gpu_model_total_ms = gpu_model.EstimateMs(device->counters());
    row.gpu_model_compute_ms = gpu_model.Estimate(device->counters()).fill_ms;
    row.cpu_model_ms = cpu_model.RangeScanMs(n);
    row.check_passed = count.ValueOrDie() == expected;
    PrintRow(row);
  }
  {  // Semi-linear over the four census attributes (Figure 6's ~9x).
    std::vector<float> c0 = census.column(0).values();
    std::vector<float> c1 = census.column(1).values();
    std::vector<float> c2 = census.column(2).values();
    std::vector<float> c3 = census.column(3).values();
    auto tex = gpu::Texture::FromColumns({&c0, &c1, &c2, &c3}, 1000);
    if (!tex.ok()) return 1;
    auto device = MakeDevice();
    auto id = device->UploadTexture(std::move(tex).ValueOrDie());
    if (!id.ok() || !device->SetViewport(n).ok()) return 1;
    core::SemilinearQuery q;
    q.weights = {0.002f, 12.0f, -5.0f, 40.0f};
    q.op = gpu::CompareOp::kGreater;
    q.b = 500.0f;
    device->ResetCounters();
    auto count = core::SemilinearSelect(device.get(), id.ValueOrDie(), q);
    if (!count.ok()) return 1;
    std::vector<uint8_t> mask;
    const uint64_t expected = cpu::SemilinearScan({&c0, &c1, &c2, &c3},
                                                  q.weights, q.op, q.b, &mask);
    ResultRow row;
    row.label = "semilinear";
    row.gpu_model_total_ms = gpu_model.EstimateMs(device->counters());
    row.gpu_model_compute_ms = gpu_model.Estimate(device->counters()).fill_ms;
    row.cpu_model_ms = cpu_model.SemilinearScanMs(n);
    row.check_passed = count.ValueOrDie() == expected;
    PrintRow(row);
  }
  {  // Median (Figures 7/8's ~2x).
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), income, n);
    device->ResetCounters();
    auto median = core::MedianValue(device.get(), attr, income.bit_width());
    if (!median.ok()) return 1;
    auto expected = cpu::Median(income.values());
    if (!expected.ok()) return 1;
    ResultRow row;
    row.label = "median";
    row.gpu_model_total_ms = gpu_model.EstimateMs(device->counters());
    row.gpu_model_compute_ms = gpu_model.Estimate(device->counters()).fill_ms;
    row.cpu_model_ms = cpu_model.QuickSelectMs(n);
    row.check_passed = median.ValueOrDie() ==
                       static_cast<uint32_t>(expected.ValueOrDie());
    PrintRow(row);
  }
  {  // SUM (Figure 10's ~20x loss).
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), income, n);
    device->ResetCounters();
    auto sum = core::Accumulate(device.get(), attr.texture, 0,
                                income.bit_width());
    if (!sum.ok()) return 1;
    ResultRow row;
    row.label = "sum";
    row.gpu_model_total_ms = gpu_model.EstimateMs(device->counters());
    row.gpu_model_compute_ms = gpu_model.Estimate(device->counters()).fill_ms;
    row.cpu_model_ms = cpu_model.SumMs(n);
    row.check_passed = sum.ValueOrDie() == cpu::SumInt(income.values());
    PrintRow(row);
  }
  PrintFooter(
      "Speedup factors track the TCP/IP figures (predicate ~3x, range "
      "~5x, semi-linear ~7-9x, median ~2x, sum ~0.05x): the algorithms' "
      "costs depend on record count and bit width, not on the data's "
      "distribution -- the consistency the paper reports.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
