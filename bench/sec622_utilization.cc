// Section 6.2.2: pipeline-utilization analysis of KthLargest. The paper
// derives: a 1000x1000 quad takes 0.278 ms at 450 MHz x 8 pipes; 19 quads
// should take 5.28 ms; the observed 6.6 ms implies ~80% utilization, the gap
// being occlusion-readback and setup latency. We reproduce the analysis with
// the paper's exact setup: full-screen (1M fragment) quads over the 250K
// record dataset.

#include "bench/bench_util.h"
#include "src/core/compare.h"
#include "src/core/kth_largest.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Section 6.2.2",
              "KthLargest pipeline utilization (19 full-screen quads)",
              "ideal 5.28 ms vs observed 6.6 ms -> ~80% utilization");
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  constexpr size_t kRecords = 250'000;
  const int bits = column.bit_width();
  gpu::PerfModel model;

  auto device = MakeDevice();
  core::AttributeBinding attr = UploadColumn(device.get(), column, kRecords);
  // The paper renders full-screen quads regardless of the record count; pad
  // the viewport to the full 1M-pixel screen. Padding pixels hold depth 1.0
  // (cleared), so they can pass >= comparisons; the paper's setup has the
  // same property, and it does not affect the timing analysis. To keep the
  // *result* correct we mask padding out with the stencil.
  if (!core::CopyToDepth(device.get(), attr).ok()) return 1;
  device->ClearStencil(0);
  if (!device->SetViewport(kRecords).ok()) return 1;
  // Stamp stencil 1 over the data region.
  device->SetStencilTest(true, gpu::CompareOp::kAlways, 1);
  device->SetStencilOp(gpu::StencilOp::kReplace, gpu::StencilOp::kReplace,
                       gpu::StencilOp::kReplace);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  if (!device->RenderQuad(0.0f).ok()) return 1;
  device->SetStencilTest(true, gpu::CompareOp::kEqual, 1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kKeep);
  // Now run the 19 comparison passes over FULL-SCREEN quads.
  if (!device->SetViewport(1'000'000).ok()) return 1;
  device->ResetCounters();
  uint64_t x = 0;
  const uint64_t k = kRecords / 2;
  for (int i = bits - 1; i >= 0; --i) {
    const uint64_t tentative = x + (uint64_t{1} << i);
    auto count =
        core::CompareCount(device.get(), gpu::CompareOp::kGreaterEqual,
                           static_cast<double>(tentative), attr.encoding);
    if (!count.ok()) return 1;
    if (count.ValueOrDie() > k - 1) x = tentative;
  }

  const gpu::GpuTimeBreakdown b = model.Estimate(device->counters());
  std::printf("passes rendered:        %llu (one per bit of the 19-bit attribute)\n",
              static_cast<unsigned long long>(device->counters().passes));
  std::printf("ideal fill time:        %.3f ms (paper: 5.28 ms)\n", b.fill_ms);
  std::printf("modeled total:          %.3f ms (paper observed: 6.6 ms)\n",
              b.ComputeMs());
  std::printf("pipeline utilization:   %.1f%% (paper: ~80%%)\n",
              model.Utilization(device->counters()) * 100.0);
  std::printf("median found:           %llu\n",
              static_cast<unsigned long long>(x));
  PrintFooter(
      "The 19 full-screen quads cost 19 x 0.278 ms of fill; per-pass setup "
      "and occlusion readbacks account for the remaining ~20%, matching the "
      "paper's utilization estimate.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
