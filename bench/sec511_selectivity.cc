// Section 5.11: selectivity analysis. The paper's claims: (a) obtaining the
// selectivity count of a selection adds no measurable overhead, because the
// occlusion query piggybacks on the selection's own rendering pass; and
// (b) counting selected values scattered over a 1000x1000 frame-buffer takes
// at most 0.25 ms.

#include "bench/bench_util.h"
#include "src/core/compare.h"
#include "src/core/count.h"
#include "src/core/range.h"
#include "src/core/state_guard.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Section 5.11", "selectivity analysis via occlusion queries",
              "counts come within 0.25 ms and add no overhead to selections");
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  constexpr size_t kRecords = 1'000'000;
  gpu::PerfModel model;

  // (a) Selection WITHOUT counting: render the comparison quad only.
  {
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, kRecords);
    const float threshold = ThresholdForSelectivity(column, kRecords, 0.6);
    if (!core::CopyToDepth(device.get(), attr).ok()) return 1;
    device->ResetCounters();
    {
      core::StateGuard guard(device.get());
      device->ClearStencil(0);
      device->SetStencilTest(true, gpu::CompareOp::kAlways, 1);
      device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                           gpu::StencilOp::kReplace);
      if (!core::CompareQuad(device.get(), gpu::CompareOp::kGreater, threshold,
                             attr.encoding)
               .ok()) {
        return 1;
      }
    }
    const double without_count = model.EstimateMs(device->counters());

    // (b) The same selection WITH the occlusion query active.
    if (!core::CopyToDepth(device.get(), attr).ok()) return 1;
    device->ResetCounters();
    {
      core::StateGuard guard(device.get());
      device->ClearStencil(0);
      device->SetStencilTest(true, gpu::CompareOp::kAlways, 1);
      device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                           gpu::StencilOp::kReplace);
      if (!device->BeginOcclusionQuery().ok()) return 1;
      if (!core::CompareQuad(device.get(), gpu::CompareOp::kGreater, threshold,
                             attr.encoding)
               .ok()) {
        return 1;
      }
      auto count = device->EndOcclusionQuery();
      if (!count.ok()) return 1;
      std::printf("selection count over 1M records: %llu\n",
                  static_cast<unsigned long long>(count.ValueOrDie()));
    }
    const double with_count = model.EstimateMs(device->counters());
    std::printf("selection pass without count: %.3f ms\n", without_count);
    std::printf("selection pass with count:    %.3f ms\n", with_count);
    std::printf("counting overhead:            %.3f ms (paper bound: 0.25 ms)\n",
                with_count - without_count);
    if (with_count - without_count > 0.25) return 1;
  }

  // (c) Standalone count of an existing selection scattered over the full
  // 1000x1000 framebuffer.
  {
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, kRecords);
    const float threshold = ThresholdForSelectivity(column, kRecords, 0.6);
    auto sel = core::CompareSelect(device.get(), attr,
                                   gpu::CompareOp::kGreater, threshold);
    if (!sel.ok()) return 1;
    device->ResetCounters();
    auto count = core::CountSelected(device.get(), 1);
    if (!count.ok() || count.ValueOrDie() != sel.ValueOrDie()) return 1;
    const double standalone = model.EstimateMs(device->counters());
    std::printf(
        "standalone count of selected values over 1000x1000 buffer: %.3f ms "
        "(readback latency %.3f ms <= 0.25 ms)\n",
        standalone, model.params().occlusion_readback_ms);
  }

  PrintFooter(
      "The occlusion readback (0.06 ms) is the only cost of selectivity "
      "analysis; it rides along with every selection experiment of Sections "
      "5.5-5.8 at no extra rendering cost, as the paper reports.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
