// Figure 9 (Section 5.9 Test 3): median restricted to an 80%-selectivity
// subset. The paper's observation: the masked GPU run costs exactly the same
// as the 100%-selectivity run (the stencil test changes what is counted, not
// how many passes run), and the CPU baseline must first compact the valid
// records into a fresh array.

#include "bench/bench_util.h"
#include "src/core/compare.h"
#include "src/core/kth_largest.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 9",
              "median of data_count at 80% selectivity, sweeping records",
              "masked GPU run costs the same as the 100% run; CPU pays for "
              "copy + select");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  const int bits = column.bit_width();
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;

  for (size_t n : RecordSweep()) {
    const float threshold = ThresholdForSelectivity(column, n, 0.8);
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);

    // Selection pass (not timed as part of the order statistic, matching the
    // paper's setup where the selection pre-exists).
    auto selected = core::CompareSelect(device.get(), attr,
                                        gpu::CompareOp::kGreater, threshold);
    if (!selected.ok()) return 1;
    core::KthOptions options;
    options.selection = core::StencilSelection{1, selected.ValueOrDie()};
    const uint64_t k = (selected.ValueOrDie() + 1) / 2;

    device->ResetCounters();
    Timer gpu_timer;
    auto gpu_v = core::KthLargest(device.get(), attr, bits, k, options);
    const double gpu_wall = gpu_timer.ElapsedMs();
    if (!gpu_v.ok()) return 1;
    const gpu::GpuTimeBreakdown b = gpu_model.Estimate(device->counters());

    const std::vector<float> values = Slice(column, n);
    std::vector<uint8_t> mask;
    cpu::PredicateScan(values, gpu::CompareOp::kGreater, threshold, &mask);
    Timer cpu_timer;
    auto cpu_v = cpu::MaskedQuickSelectLargest(values, mask, k);
    const double cpu_wall = cpu_timer.ElapsedMs();
    if (!cpu_v.ok()) return 1;

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = b.TotalMs();
    row.gpu_model_compute_ms = b.ComputeMs();
    row.cpu_model_ms =
        cpu_model.MaskedQuickSelectMs(n, selected.ValueOrDie());
    row.gpu_wall_ms = gpu_wall;
    row.cpu_wall_ms = cpu_wall;
    row.check_passed =
        gpu_v.ValueOrDie() == static_cast<uint32_t>(cpu_v.ValueOrDie());
    PrintRow(row);
  }
  PrintFooter(
      "Compare with Figure 8's rows: the masked GPU times are identical to "
      "the unmasked ones (same pass structure), while the CPU baseline adds "
      "a compaction copy -- the paper's Section 5.9 Test 3 result.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
