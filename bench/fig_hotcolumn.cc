// Hot-column workload: the same predicate issued repeatedly against one
// column, with the depth-plane cache on (DESIGN.md §14). The first query
// misses -- it pays the CopyToDepth pass plus the plane snapshot -- and
// every repeat restores the cached plane instead of re-copying, so the
// warm-path wall clock must be at least 2x below the cold path on
// identical results.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/eval_cnf.h"
#include "src/core/planner.h"
#include "src/cpu/scan.h"

namespace gpudb {
namespace bench {
namespace {

constexpr int kRepeats = 4;  // 1 cold + 3 warm

int Run() {
  PrintHeader("hotcolumn",
              "repeated predicate on one hot column, depth-plane cache on",
              "warm queries skip the copy: >=2x wall speedup over cold");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  gpu::PerfModel model;

  for (size_t n : RecordSweep()) {
    const float threshold = ThresholdForSelectivity(column, n, 0.6);
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);
    attr.column = 0;
    const std::vector<core::GpuClause> clauses = {
        {core::GpuPredicate::DepthCompare(attr, gpu::CompareOp::kGreater,
                                          threshold)}};

    double cold_ms = 0, warm_ms = 0, cold_wall = 0, warm_wall = 0;
    uint64_t cold_fp = 0, warm_fp = 0, count = 0;
    bool ok = true;
    for (int q = 0; q < kRepeats; ++q) {
      core::SelectionExecOptions opts;
      opts.plan = core::PlanSelectionPasses(clauses, /*fusion_enabled=*/true,
                                            /*cache_enabled=*/true);
      opts.use_cache = true;
      opts.table = "tcpip";
      opts.table_version = 1;
      device->ResetCounters();
      Timer timer;
      auto sel = core::EvalCnfPlanned(device.get(), clauses, &opts);
      const double wall = timer.ElapsedMs();
      if (!sel.ok()) return 1;
      const double ms = model.EstimateMs(device->counters());
      const uint64_t fp = device->counters().fp_instructions_executed;
      if (q == 0) {
        ok = ok && opts.cache_misses == 1;
        cold_ms = ms;
        cold_wall = wall;
        cold_fp = fp;
        count = sel.ValueOrDie().count;
      } else {
        ok = ok && opts.cache_hits == 1;
        warm_ms += ms / (kRepeats - 1);
        warm_wall += wall / (kRepeats - 1);
        warm_fp += fp / static_cast<uint64_t>(kRepeats - 1);
        ok = ok && sel.ValueOrDie().count == count;
      }
    }

    // Cross-check against the CPU scan.
    const std::vector<float> values = Slice(column, n);
    std::vector<uint8_t> mask;
    const uint64_t cpu_count = cpu::PredicateScan(
        values, gpu::CompareOp::kGreater, threshold, &mask);

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = cold_ms;    // miss: copy + snapshot + compare
    row.gpu_model_compute_ms = warm_ms;  // hit: restore + compare
    row.cpu_model_ms = 0;
    row.gpu_wall_ms = cold_wall;
    row.cpu_wall_ms = warm_wall;
    // The model prices every pass by its fragment count, so the planned
    // speedup there is the 3-passes-to-2 ratio (1.5x); the 2x acceptance
    // bar is on measured wall clock, where the skipped copy and snapshot
    // dominate.
    row.check_passed = ok && count == cpu_count && warm_ms < cold_ms &&
                       warm_wall * 2.0 <= cold_wall;
    PrintRow(row);
    // The skipped-copy ledger: warm passes fetch no attribute texels, so
    // the fragment-program instruction traffic collapses.
    std::printf("    fp instructions: cold=%llu warm=%llu (copy skipped)\n",
                static_cast<unsigned long long>(cold_fp),
                static_cast<unsigned long long>(warm_fp));
  }
  PrintFooter(
      "Columns 2/3 are the cold and mean-warm model times, columns 4/5 the "
      "cold and mean-warm wall clocks: restoring the cached depth plane "
      "replaces the CopyToDepth pass and the snapshot, >=2x wall speedup "
      "on identical counts.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
