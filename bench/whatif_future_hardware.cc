// What-if analysis of the hardware changes the paper asks for in Section
// 6.1/6.2, priced with the calibrated cost model against the actually
// executed pass structure of each operation:
//
//  * "Copy Time": direct texture-to-depth copies ("In the future, we can
//    expect support for this operation on GPUs which could improve the
//    overall performance") -- modeled as a 1-instruction blit with no
//    depth-write penalty.
//  * "Integer Arithmetic Instructions": "The instructions for integer
//    arithmetic would reduce the timings of our Accumulator algorithm
//    significantly" -- TestBit's 5-instruction fraction trick collapses to
//    a single-instruction bit test.
//  * Faster readback/setup (PCI-EXPRESS + asynchronous transfers): halves
//    the per-pass overhead and occlusion latency.

#include <string>

#include "bench/bench_util.h"
#include "src/core/accumulator.h"
#include "src/core/compare.h"
#include "src/core/kth_largest.h"

namespace gpudb {
namespace bench {
namespace {

/// Re-prices a recorded pass log under hypothetical hardware: copy passes
/// become 1-instruction blits without the depth-write penalty, TestBit
/// passes become 1-instruction integer bit tests.
gpu::DeviceCounters RewriteForFutureHardware(gpu::DeviceCounters counters,
                                             bool direct_copy,
                                             bool integer_instructions) {
  counters.fp_instructions_executed = 0;
  for (gpu::PassRecord& pass : counters.pass_log) {
    if (direct_copy && pass.label == "CopyToDepthFP") {
      pass.fp_instructions = 1;
      pass.depth_writes = 0;
    }
    if (integer_instructions && pass.label == "TestBitFP") {
      pass.fp_instructions = 1;
    }
    counters.fp_instructions_executed +=
        pass.fragments * static_cast<uint64_t>(pass.fp_instructions);
  }
  return counters;
}

gpu::PerfModelParams FasterBus(gpu::PerfModelParams params) {
  params.pass_setup_ms /= 2;
  params.occlusion_readback_ms /= 2;
  params.upload_bytes_per_ms *= 4;  // PCI-E x16 vs AGP 8x
  params.readback_bytes_per_ms *= 8;
  return params;
}

int Run() {
  PrintHeader("What-if: the hardware the paper asks for",
              "re-pricing the 2004 pass structures under Section 6.1's "
              "wish list",
              "direct copies, integer fragment instructions, PCI-EXPRESS");
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  constexpr size_t n = 1'000'000;
  const int bits = column.bit_width();
  gpu::PerfModel baseline;
  const gpu::PerfModel future_bus(FasterBus(baseline.params()));
  cpu::XeonModel cpu_model;

  std::printf("%-22s %12s %14s %14s %12s\n", "operation", "2004_ms",
              "future_ms", "cpu_ms", "new_verdict");

  struct Case {
    std::string name;
    gpu::DeviceCounters counters;
    double cpu_ms;
  };
  std::vector<Case> cases;

  {  // Predicate selection (dominated by the copy).
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);
    const float t = ThresholdForSelectivity(column, n, 0.6);
    device->ResetCounters();
    if (!core::CompareSelect(device.get(), attr, gpu::CompareOp::kGreater, t)
             .ok()) {
      return 1;
    }
    cases.push_back({"predicate-select", device->counters(),
                     cpu_model.PredicateScanMs(n)});
  }
  {  // KthLargest (median).
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);
    device->ResetCounters();
    if (!core::MedianValue(device.get(), attr, bits).ok()) return 1;
    cases.push_back({"median (kth-largest)", device->counters(),
                     cpu_model.QuickSelectMs(n)});
  }
  {  // Accumulator SUM -- the paper's lost benchmark.
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);
    device->ResetCounters();
    if (!core::Accumulate(device.get(), attr.texture, 0, bits).ok()) return 1;
    cases.push_back({"sum (accumulator)", device->counters(),
                     cpu_model.SumMs(n)});
  }

  for (const Case& c : cases) {
    const double old_ms = baseline.EstimateMs(c.counters);
    const gpu::DeviceCounters rewritten = RewriteForFutureHardware(
        c.counters, /*direct_copy=*/true, /*integer_instructions=*/true);
    const double new_ms = future_bus.EstimateMs(rewritten);
    const bool gpu_wins = new_ms < c.cpu_ms;
    std::printf("%-22s %12.3f %14.3f %14.3f %12s\n", c.name.c_str(), old_ms,
                new_ms, c.cpu_ms,
                gpu_wins ? "GPU wins" : "CPU wins");
  }
  PrintFooter(
      "Selections and order statistics widen their lead, and the "
      "Accumulator's ~20x loss shrinks to ~4x -- but one pass per bit still "
      "loses to the CPU's single-pass SIMD sum. The structural fix is not an "
      "instruction but a programming model with scatter/reduction, which is "
      "what CUDA-era GPU databases eventually used.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
