// Figure 6: semi-linear query over the four TCP/IP attributes -- a random
// linear combination compared against a constant. The paper reports the GPU
// almost an order of magnitude (~9x) faster than the optimized CPU scan.

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/semilinear.h"
#include "src/cpu/scan.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 6",
              "semi-linear query dot(s, a) > b over 4 attributes, random s",
              "GPU ~9x (almost one order of magnitude) faster");
  PrintRowHeader();
  const db::Table& table = TcpIpTable();
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;
  Random rng(20040618);
  const std::array<float, 4> weights = {
      static_cast<float>(rng.NextDouble(-1, 1)),
      static_cast<float>(rng.NextDouble(-1, 1)),
      static_cast<float>(rng.NextDouble(-1, 1)),
      static_cast<float>(rng.NextDouble(-1, 1))};

  for (size_t n : RecordSweep()) {
    // Pack all four attributes into one RGBA texture.
    std::vector<float> c0 = Slice(table.column(0), n);
    std::vector<float> c1 = Slice(table.column(1), n);
    std::vector<float> c2 = Slice(table.column(2), n);
    std::vector<float> c3 = Slice(table.column(3), n);
    auto tex = gpu::Texture::FromColumns({&c0, &c1, &c2, &c3}, 1000);
    if (!tex.ok()) return 1;
    auto device = MakeDevice();
    auto id = device->UploadTexture(std::move(tex).ValueOrDie());
    if (!id.ok() || !device->SetViewport(n).ok()) return 1;

    core::SemilinearQuery query;
    query.weights = weights;
    query.op = gpu::CompareOp::kGreater;
    query.b = 1000.0f;

    device->ResetCounters();
    Timer gpu_timer;
    auto gpu_count =
        core::SemilinearSelect(device.get(), id.ValueOrDie(), query);
    const double gpu_wall = gpu_timer.ElapsedMs();
    if (!gpu_count.ok()) return 1;
    const gpu::GpuTimeBreakdown b = gpu_model.Estimate(device->counters());

    std::vector<uint8_t> mask;
    Timer cpu_timer;
    const uint64_t cpu_count = cpu::SemilinearScan(
        {&c0, &c1, &c2, &c3}, weights, query.op, query.b, &mask);
    const double cpu_wall = cpu_timer.ElapsedMs();

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = b.TotalMs();
    row.gpu_model_compute_ms = b.ComputeMs();  // no copy pass at all
    row.cpu_model_ms = cpu_model.SemilinearScanMs(n);
    row.gpu_wall_ms = gpu_wall;
    row.cpu_wall_ms = cpu_wall;
    row.check_passed = gpu_count.ValueOrDie() == cpu_count;
    PrintRow(row);
  }
  PrintFooter(
      "The semi-linear query runs entirely in one 4-instruction fragment "
      "program pass (vector dot product in the pixel engines) with no "
      "depth-buffer copy, giving the ~9x of Figure 6.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
