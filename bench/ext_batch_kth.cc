// Extension bench: batched order statistics. All quartiles of an attribute
// share a single CopyToDepth pass because Routine 4.5's comparison passes
// never write depth -- a multi-query optimization the paper's design makes
// free.

#include "bench/bench_util.h"
#include "src/core/kth_largest.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Extension: batched k-th largest",
              "quartiles (4 order statistics) with one shared copy pass",
              "comparison passes preserve the depth buffer (Routine 4.1)");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  const int bits = column.bit_width();
  gpu::PerfModel model;

  for (size_t n : RecordSweep()) {
    const std::vector<uint64_t> ks = {n / 4, n / 2, 3 * n / 4, n};
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);

    device->ResetCounters();
    Timer batch_timer;
    auto batch = core::KthLargestBatch(device.get(), attr, bits, ks);
    const double batch_wall = batch_timer.ElapsedMs();
    if (!batch.ok()) return 1;
    const double batch_ms = model.EstimateMs(device->counters());

    device->ResetCounters();
    Timer individual_timer;
    std::vector<uint32_t> individual;
    for (uint64_t k : ks) {
      auto v = core::KthLargest(device.get(), attr, bits, k);
      if (!v.ok()) return 1;
      individual.push_back(v.ValueOrDie());
    }
    const double individual_wall = individual_timer.ElapsedMs();
    const double individual_ms = model.EstimateMs(device->counters());

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = batch_ms;       // batched strategy
    row.gpu_model_compute_ms = individual_ms;  // 4 separate queries
    row.cpu_model_ms = 0;
    row.gpu_wall_ms = batch_wall;
    row.cpu_wall_ms = individual_wall;
    row.check_passed = batch.ValueOrDie() == individual;
    PrintRow(row);
  }
  PrintFooter(
      "Column 2 is the batched run (1 copy + 4 x 19 passes), column 3 the "
      "four independent runs (4 copies): the batch saves three copy passes "
      "(~5 ms at 1M records) with identical results.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
