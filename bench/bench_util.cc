#include "bench/bench_util.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>

#include "src/common/json.h"
#include "src/gpu/device_pool.h"

namespace gpudb {
namespace bench {

namespace {

/// Rows of the figure currently being printed, gathered between PrintHeader
/// and PrintFooter for the JSON side channel.
struct FigureRecording {
  bool active = false;
  std::string figure;
  std::string description;
  std::string paper_claim;
  std::vector<ResultRow> rows;
};

FigureRecording& Recording() {
  static FigureRecording recording;
  return recording;
}

std::string SanitizeFigureName(const std::string& figure) {
  std::string out;
  out.reserve(figure.size());
  for (char c : figure) {
    out += std::isalnum(static_cast<unsigned char>(c))
               ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
               : '_';
  }
  return out;
}

/// Cumulative Profiler totals across every pass label; PrintRow subtracts
/// consecutive readings to attribute counters to rows.
struct ProfTotals {
  uint64_t passes = 0;
  uint64_t fragments = 0;
  PassProfile prof;
};

ProfTotals CurrentProfTotals() {
  ProfTotals t;
  for (const PassProfileGroup& g : Profiler::Global().Snapshot()) {
    t.passes += g.passes;
    t.fragments += g.fragments;
    t.prof.Merge(g.prof);
  }
  return t;
}

/// Profiler reading as of the last PrintHeader/PrintRow.
ProfTotals& LastProfTotalsSlot() {
  static ProfTotals last;
  return last;
}

void WriteFigureJson(const FigureRecording& rec, const std::string& note) {
  const char* dir = std::getenv("GPUDB_BENCH_JSON_DIR");
  const std::string path = std::string(dir != nullptr ? dir : ".") +
                           "/BENCH_" + SanitizeFigureName(rec.figure) +
                           ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"figure\": " << json::Quote(rec.figure) << ",\n";
  out << "  \"threads\": " << BenchThreads() << ",\n";
  // Key present only under --profile, keeping default JSONs byte-stable.
  if (Profiler::Global().enabled()) out << "  \"profile\": true,\n";
  out << "  \"description\": " << json::Quote(rec.description) << ",\n";
  out << "  \"paper_claim\": " << json::Quote(rec.paper_claim) << ",\n";
  out << "  \"note\": " << json::Quote(note) << ",\n";
  out << "  \"rows\": [";
  for (size_t i = 0; i < rec.rows.size(); ++i) {
    const ResultRow& row = rec.rows[i];
    const double speedup = row.gpu_model_total_ms > 0
                               ? row.cpu_model_ms / row.gpu_model_total_ms
                               : 0.0;
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"label\": " << json::Quote(row.label)
        << ", \"gpu_model_total_ms\": " << json::Number(row.gpu_model_total_ms)
        << ", \"gpu_model_compute_ms\": "
        << json::Number(row.gpu_model_compute_ms)
        << ", \"cpu_model_ms\": " << json::Number(row.cpu_model_ms)
        << ", \"speedup\": " << json::Number(speedup)
        << ", \"gpu_wall_ms\": " << json::Number(row.gpu_wall_ms)
        << ", \"cpu_wall_ms\": " << json::Number(row.cpu_wall_ms)
        << ", \"check_passed\": " << (row.check_passed ? "true" : "false");
    if (row.profiled) {
      // Counter columns only exist under --profile, so baseline JSONs (and
      // bench_diff.py comparisons against them) are byte-compatible.
      out << ", \"prof_passes\": " << row.prof_passes
          << ", \"prof_fragments\": " << row.prof_fragments
          << ", \"alpha_killed\": " << row.prof.alpha_killed
          << ", \"stencil_killed\": " << row.prof.stencil_killed
          << ", \"depth_tested\": " << row.prof.depth_tested
          << ", \"depth_killed\": " << row.prof.depth_killed
          << ", \"occlusion_samples\": " << row.prof.occlusion_samples
          << ", \"plane_bytes_read\": " << row.prof.plane_bytes_read
          << ", \"plane_bytes_written\": " << row.prof.plane_bytes_written;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

/// Worker-thread count shared by every device the bench creates; mutable
/// only through InitBench.
int& BenchThreadsSlot() {
  static int threads = gpu::ThreadPool::DefaultThreads();
  return threads;
}

/// Device-pool size for pool-aware benches; 1 = classic single device.
int& BenchDevicesSlot() {
  static int devices = gpu::DevicesFromEnv(/*fallback=*/1);
  return devices;
}

/// Fault/deadline/VRAM settings shared by every device the bench creates;
/// defaults come from the GPUDB_* environment, flags override.
struct BenchRobustness {
  gpu::FaultConfig faults = gpu::FaultInjector::ConfigFromEnv();
  double deadline_ms = gpu::DeadlineMsFromEnv();
  uint64_t vram_budget = gpu::VramBudgetBytesFromEnv();
};

BenchRobustness& RobustnessSlot() {
  static BenchRobustness settings;
  return settings;
}

}  // namespace

std::vector<size_t> RecordSweep() {
  return {250'000, 500'000, 750'000, 1'000'000};
}

void InitBench(int argc, char** argv) {
  if (const char* env = std::getenv("GPUDB_PROFILE")) {
    if (env[0] != '\0' && env[0] != '0') Profiler::Global().set_enabled(true);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      Profiler::Global().set_enabled(true);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 10);
      if (n < 1) {
        std::fprintf(stderr, "invalid %s: thread count must be >= 1\n",
                     arg.c_str());
        std::exit(2);
      }
      BenchThreadsSlot() = n;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      RobustnessSlot().deadline_ms = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      RobustnessSlot().faults.seed =
          std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      RobustnessSlot().faults.rate = std::atof(arg.c_str() + 13);
    } else if (arg.rfind("--vram-budget=", 0) == 0) {
      RobustnessSlot().vram_budget =
          std::strtoull(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--devices=", 0) == 0) {
      const int n = std::atoi(arg.c_str() + 10);
      if (n < 1) {
        std::fprintf(stderr, "invalid %s: device count must be >= 1\n",
                     arg.c_str());
        std::exit(2);
      }
      BenchDevicesSlot() = n;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--threads=N] "
                   "[--deadline-ms=N] [--fault-seed=N] [--fault-rate=P] "
                   "[--vram-budget=N] [--devices=N] [--profile]\n",
                   arg.c_str(), argv[0]);
      std::exit(2);
    }
  }
}

int BenchThreads() { return BenchThreadsSlot(); }

int BenchDevices() { return BenchDevicesSlot(); }

const gpu::FaultConfig& BenchFaultConfig() { return RobustnessSlot().faults; }

std::unique_ptr<gpu::Device> MakeDevice() {
  auto device = std::make_unique<gpu::Device>(1000, 1000);
  const Status st = device->SetWorkerThreads(BenchThreads());
  if (!st.ok()) {
    std::fprintf(stderr, "SetWorkerThreads failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  const BenchRobustness& robustness = RobustnessSlot();
  device->ConfigureFaults(robustness.faults);
  if (robustness.vram_budget > 0) {
    const Status budget = device->SetVideoMemoryBudget(robustness.vram_budget);
    if (!budget.ok()) {
      std::fprintf(stderr, "SetVideoMemoryBudget failed: %s\n",
                   budget.ToString().c_str());
      std::abort();
    }
  }
  if (robustness.deadline_ms > 0) {
    device->ArmDeadline(robustness.deadline_ms);
  }
  return device;
}

const db::Table& TcpIpTable() {
  static const db::Table* table = [] {
    auto t = db::MakeTcpIpTable(1'000'000);
    if (!t.ok()) {
      std::fprintf(stderr, "failed to generate TCP/IP table: %s\n",
                   t.status().ToString().c_str());
      std::abort();
    }
    return new db::Table(std::move(t).ValueOrDie());
  }();
  return *table;
}

std::vector<float> Slice(const db::Column& column, size_t n) {
  n = std::min(n, column.size());
  return std::vector<float>(column.values().begin(),
                            column.values().begin() + n);
}

std::vector<uint32_t> SliceInts(const db::Column& column, size_t n) {
  n = std::min(n, column.size());
  std::vector<uint32_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = column.int_value(i);
  return out;
}

core::AttributeBinding UploadColumn(gpu::Device* device,
                                    const db::Column& column, size_t n) {
  const std::vector<float> values = Slice(column, n);
  auto tex = gpu::Texture::FromColumns({&values}, 1000);
  if (!tex.ok()) {
    std::fprintf(stderr, "texture build failed: %s\n",
                 tex.status().ToString().c_str());
    std::abort();
  }
  auto id = device->UploadTexture(std::move(tex).ValueOrDie());
  if (!id.ok() || !device->SetViewport(n).ok()) {
    std::fprintf(stderr, "upload failed\n");
    std::abort();
  }
  core::AttributeBinding binding;
  binding.texture = id.ValueOrDie();
  binding.channel = 0;
  binding.encoding = core::DepthEncoding::ForColumn(column);
  return binding;
}

float ThresholdForSelectivity(const db::Column& column, size_t n,
                              double selectivity) {
  std::vector<float> sorted = Slice(column, n);
  std::sort(sorted.begin(), sorted.end());
  // x > sorted[(1-s)*n - 1] keeps ~s*n values.
  const double fraction = 1.0 - selectivity;
  const auto rank = static_cast<size_t>(
      std::clamp(fraction * static_cast<double>(n), 1.0,
                 static_cast<double>(n)));
  return sorted[rank - 1];
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& paper_claim) {
  Recording() = {true, figure, description, paper_claim, {}};
  if (Profiler::Global().enabled()) LastProfTotalsSlot() = CurrentProfTotals();
  std::printf("================================================================================\n");
  std::printf("%s: %s\n", figure.c_str(), description.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("model columns = simulated 2004 hardware (GeForce FX 5900 vs dual 2.8GHz Xeon);\n");
  std::printf("wall columns  = this machine's execution of the pipeline simulator / baseline.\n");
  std::printf("================================================================================\n");
}

void PrintRowHeader() {
  std::printf("%-14s %14s %16s %14s %10s %12s %12s %7s\n", "label",
              "gpu_model_ms", "gpu_compute_ms", "cpu_model_ms", "speedup",
              "gpu_wall_ms", "cpu_wall_ms", "check");
}

void PrintRow(const ResultRow& row) {
  ResultRow recorded = row;
  if (Profiler::Global().enabled()) {
    const ProfTotals now = CurrentProfTotals();
    const ProfTotals& last = LastProfTotalsSlot();
    recorded.profiled = true;
    recorded.prof_passes = now.passes - last.passes;
    recorded.prof_fragments = now.fragments - last.fragments;
    recorded.prof.alpha_killed = now.prof.alpha_killed - last.prof.alpha_killed;
    recorded.prof.stencil_killed =
        now.prof.stencil_killed - last.prof.stencil_killed;
    recorded.prof.depth_tested = now.prof.depth_tested - last.prof.depth_tested;
    recorded.prof.depth_killed = now.prof.depth_killed - last.prof.depth_killed;
    recorded.prof.occlusion_samples =
        now.prof.occlusion_samples - last.prof.occlusion_samples;
    recorded.prof.plane_bytes_read =
        now.prof.plane_bytes_read - last.prof.plane_bytes_read;
    recorded.prof.plane_bytes_written =
        now.prof.plane_bytes_written - last.prof.plane_bytes_written;
    LastProfTotalsSlot() = now;
  }
  if (Recording().active) Recording().rows.push_back(recorded);
  const double speedup =
      row.gpu_model_total_ms > 0 ? row.cpu_model_ms / row.gpu_model_total_ms
                                 : 0.0;
  std::printf("%-14s %14.3f %16.3f %14.3f %9.2fx %12.2f %12.2f %7s\n",
              row.label.c_str(), row.gpu_model_total_ms,
              row.gpu_model_compute_ms, row.cpu_model_ms, speedup,
              row.gpu_wall_ms, row.cpu_wall_ms,
              row.check_passed ? "OK" : "FAIL");
}

void PrintFooter(const std::string& note) {
  std::printf("--------------------------------------------------------------------------------\n");
  std::printf("%s\n\n", note.c_str());
  if (Recording().active) {
    WriteFigureJson(Recording(), note);
    Recording() = {};
  }
}

}  // namespace bench
}  // namespace gpudb
