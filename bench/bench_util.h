#ifndef GPUDB_BENCH_BENCH_UTIL_H_
#define GPUDB_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/profile.h"
#include "src/common/timer.h"
#include "src/core/compare.h"
#include "src/cpu/xeon_model.h"
#include "src/db/datagen.h"
#include "src/db/table.h"
#include "src/gpu/device.h"
#include "src/gpu/perf_model.h"

namespace gpudb {
namespace bench {

/// The record-count axis used by the paper's figures (up to one million
/// records, Section 5.1).
std::vector<size_t> RecordSweep();

/// Parses shared benchmark flags. Supported:
///   --threads=N      pixel-engine worker threads for every device the bench
///                    creates (default: $GPUDB_THREADS, else hardware
///                    concurrency; threading never changes results, only
///                    wall-clock).
///   --deadline-ms=N  arm a wall-clock deadline on every device the bench
///                    creates ($GPUDB_DEADLINE_MS; 0 = off).
///   --fault-seed=N   deterministic fault-injector seed ($GPUDB_FAULT_SEED).
///   --fault-rate=P   per-site fault probability in [0,1]; 0 keeps the
///                    injector compiled in but disabled ($GPUDB_FAULT_RATE).
///   --vram-budget=N  video-memory budget in bytes for every device
///                    ($GPUDB_VRAM_BUDGET; 0 = default 256 MB).
///   --devices=N      device-pool size for pool-aware benches
///                    ($GPUDB_DEVICES; 1 = classic single device).
///   --profile        enable the gpuprof deep pipeline counters (also via
///                    $GPUDB_PROFILE=1); PrintRow then captures the per-row
///                    counter delta and BENCH_*.json rows gain counter
///                    columns. Off by default: the counters are compiled to
///                    no-ops so baseline numbers are unaffected.
/// Unknown flags abort with a usage message so typos don't silently run
/// the wrong configuration.
void InitBench(int argc, char** argv);

/// The worker-thread count benches run with (see InitBench).
int BenchThreads();

/// The device-pool size benches run with (see InitBench); 1 = no pool.
int BenchDevices();

/// The fault configuration benches run with (see InitBench).
const gpu::FaultConfig& BenchFaultConfig();

/// Fresh 1000x1000 device (the paper's screen/texture size), configured
/// with BenchThreads() pixel-engine workers and the fault/deadline/VRAM
/// settings from InitBench.
std::unique_ptr<gpu::Device> MakeDevice();

/// The shared TCP/IP benchmark table (1M rows, generated once per process).
const db::Table& TcpIpTable();

/// First `n` values of a column.
std::vector<float> Slice(const db::Column& column, size_t n);
std::vector<uint32_t> SliceInts(const db::Column& column, size_t n);

/// Uploads the first `n` values of a column as a single-channel texture and
/// returns its exact-int binding; sets the device viewport to n.
core::AttributeBinding UploadColumn(gpu::Device* device,
                                    const db::Column& column, size_t n);

/// Value v such that the predicate `x > v` selects ~`selectivity` of the
/// first n records (e.g. 0.6 -> the paper's 60%-selectivity setups).
float ThresholdForSelectivity(const db::Column& column, size_t n,
                              double selectivity);

/// Prints the figure banner with the paper's claim for easy comparison, and
/// starts recording the figure's rows for the machine-readable JSON emitted
/// by PrintFooter.
void PrintHeader(const std::string& figure, const std::string& description,
                 const std::string& paper_claim);

/// Prints one row of "model vs measured" results. Model columns are
/// simulated 2004-hardware milliseconds (GeForce FX 5900 / dual Xeon);
/// wall columns are this machine's actual execution time of the simulator
/// and the real CPU baseline, reported for transparency.
struct ResultRow {
  std::string label;           ///< e.g. record count or k.
  double gpu_model_total_ms = 0;
  double gpu_model_compute_ms = 0;
  double cpu_model_ms = 0;
  double gpu_wall_ms = 0;      ///< simulator wall-clock (not paper-scale)
  double cpu_wall_ms = 0;      ///< real baseline wall-clock
  bool check_passed = true;    ///< GPU result cross-checked against CPU
  /// Deep pipeline counters: the global Profiler's delta since the previous
  /// PrintRow (or PrintHeader). Filled automatically by PrintRow when the
  /// bench runs with --profile; all-zero (profiled=false) otherwise.
  bool profiled = false;
  uint64_t prof_passes = 0;
  uint64_t prof_fragments = 0;
  PassProfile prof;
};

void PrintRowHeader();
void PrintRow(const ResultRow& row);

/// Footer: summarizes the shape vs the paper's claim, and writes every row
/// recorded since the last PrintHeader to BENCH_<figure>.json (figure name
/// lowercased, non-alphanumerics folded to '_') in the directory named by
/// $GPUDB_BENCH_JSON_DIR, defaulting to the current directory. Emission
/// failures only warn -- the console table is the primary output.
void PrintFooter(const std::string& note);

}  // namespace bench
}  // namespace gpudb

#endif  // GPUDB_BENCH_BENCH_UTIL_H_
