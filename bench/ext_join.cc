// Extension bench: equi-join via distinct-key iteration with occlusion-count
// pruning (paper Section 7 future work, using the Section 5.11 selectivity
// machinery). Also compares the exact GPU-counted join size against the
// histogram estimate a 2004-era optimizer would have used.

#include <cmath>
#include <map>

#include "bench/bench_util.h"
#include "src/core/histogram.h"
#include "src/core/join.h"
#include "src/db/datagen.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Extension: equi-join by distinct keys",
              "100K x 250K join, sweeping key cardinality",
              "join as future work (Section 7); per-key occlusion probes "
              "prune non-matching keys (Section 5.11)");
  gpu::PerfModel model;
  std::printf("%-8s %14s %14s %14s %14s %8s\n", "keys", "gpu_model_ms",
              "gpu_wall_ms", "exact_size", "hist_estimate", "check");

  for (int key_bits : {3, 5, 7}) {
    auto left_t = db::MakeUniformTable(100'000, key_bits, 1, /*seed=*/81);
    auto right_t = db::MakeUniformTable(250'000, key_bits, 1, /*seed=*/82);
    if (!left_t.ok() || !right_t.ok()) return 1;
    const db::Column& lc = left_t.ValueOrDie().column(0);
    const db::Column& rc = right_t.ValueOrDie().column(0);

    gpu::Device device(1000, 1000);
    core::JoinSide left{UploadColumn(&device, lc, lc.size()), lc.size(),
                        key_bits};
    core::JoinSide right{UploadColumn(&device, rc, rc.size()), rc.size(),
                         key_bits};

    device.ResetCounters();
    Timer timer;
    auto size = core::EquiJoinSize(&device, left, right);
    const double wall = timer.ElapsedMs();
    if (!size.ok()) return 1;
    const double gpu_ms = model.EstimateMs(device.counters());

    // CPU reference + histogram estimate.
    std::map<uint32_t, uint64_t> freq;
    for (size_t i = 0; i < lc.size(); ++i) ++freq[lc.int_value(i)];
    uint64_t exact = 0;
    for (size_t i = 0; i < rc.size(); ++i) {
      auto it = freq.find(rc.int_value(i));
      if (it != freq.end()) exact += it->second;
    }
    const double domain = std::exp2(key_bits);
    auto hl = core::GpuHistogram(
        &device, left.key, 0, domain,
        std::min(64, 1 << key_bits));
    (void)device.SetViewport(right.rows);
    auto hr = core::GpuHistogram(
        &device, right.key, 0, domain,
        std::min(64, 1 << key_bits));
    if (!hl.ok() || !hr.ok()) return 1;
    auto est = core::EstimateEquiJoinSize(hl.ValueOrDie(), hr.ValueOrDie());
    if (!est.ok()) return 1;

    std::printf("%-8d %14.3f %14.2f %14llu %14.0f %8s\n", 1 << key_bits,
                gpu_ms, wall, static_cast<unsigned long long>(exact),
                est.ValueOrDie(),
                size.ValueOrDie() == exact ? "OK" : "FAIL");
  }
  PrintFooter(
      "Cost scales with the driving side's distinct keys (discovery + two "
      "counting passes each); with one bucket per key the histogram "
      "estimate is exact, and the planner gets join sizes for the price of "
      "a few dozen occlusion queries.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
