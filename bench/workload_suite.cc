// Capstone workload: a realistic mixed analytics session -- eight SQL
// queries over the 1M-flow table, each priced on both 2004 testbeds. This is
// the paper's conclusion in benchmark form: "it would be useful for database
// designers to utilize GPU capabilities alongside traditional CPU-based
// code" -- the co-processor split falls directly out of the per-query
// numbers.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/executor.h"
#include "src/sql/parser.h"

namespace gpudb {
namespace bench {
namespace {

struct SuiteQuery {
  const char* sql;
  /// Which CPU-model primitive prices the baseline, with its detail arg.
  enum class CpuKind { kPredicate, kMulti2, kMulti3, kQuickSelect, kSum } kind;
};

int Run() {
  PrintHeader("Workload suite",
              "eight mixed SQL queries over 1M TCP/IP flows",
              "co-processing: selections on the GPU, SUM on the CPU "
              "(Section 7's conclusion)");
  const db::Table& table = TcpIpTable();
  auto device = MakeDevice();
  auto exec = core::Executor::Make(device.get(), &table);
  if (!exec.ok()) return 1;
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;
  const size_t n = table.num_rows();

  const std::vector<SuiteQuery> suite = {
      {"SELECT COUNT(*) FROM flows WHERE data_count >= 100000",
       SuiteQuery::CpuKind::kPredicate},
      {"SELECT COUNT(*) FROM flows WHERE data_loss > 0 AND "
       "retransmissions > 10",
       SuiteQuery::CpuKind::kMulti2},
      {"SELECT COUNT(*) FROM flows WHERE data_count BETWEEN 1000 AND 200000",
       SuiteQuery::CpuKind::kMulti2},
      {"SELECT COUNT(*) FROM flows WHERE data_loss >= retransmissions AND "
       "flow_rate > 500",
       SuiteQuery::CpuKind::kMulti2},
      {"SELECT MEDIAN(data_count) FROM flows",
       SuiteQuery::CpuKind::kQuickSelect},
      {"SELECT KTH_LARGEST(flow_rate, 1000) FROM flows",
       SuiteQuery::CpuKind::kQuickSelect},
      {"SELECT MAX(retransmissions) FROM flows",
       SuiteQuery::CpuKind::kQuickSelect},
      {"SELECT SUM(data_loss) FROM flows", SuiteQuery::CpuKind::kSum},
  };

  std::printf("%-68s %12s %12s %8s\n", "query", "gpu_ms", "cpu_ms", "winner");
  double gpu_total = 0, cpu_total = 0, best_total = 0;
  for (const SuiteQuery& q : suite) {
    device->ResetCounters();
    auto r = sql::ExecuteSql(exec.ValueOrDie().get(), q.sql);
    if (!r.ok()) {
      std::fprintf(stderr, "%s -> %s\n", q.sql, r.status().ToString().c_str());
      return 1;
    }
    const double gpu_ms = gpu_model.EstimateMs(device->counters());
    double cpu_ms = 0;
    switch (q.kind) {
      case SuiteQuery::CpuKind::kPredicate:
        cpu_ms = cpu_model.PredicateScanMs(n);
        break;
      case SuiteQuery::CpuKind::kMulti2:
        cpu_ms = cpu_model.MultiAttributeScanMs(n, 2);
        break;
      case SuiteQuery::CpuKind::kMulti3:
        cpu_ms = cpu_model.MultiAttributeScanMs(n, 3);
        break;
      case SuiteQuery::CpuKind::kQuickSelect:
        cpu_ms = cpu_model.QuickSelectMs(n);
        break;
      case SuiteQuery::CpuKind::kSum:
        cpu_ms = cpu_model.SumMs(n);
        break;
    }
    gpu_total += gpu_ms;
    cpu_total += cpu_ms;
    best_total += std::min(gpu_ms, cpu_ms);
    std::printf("%-68s %12.3f %12.3f %8s\n", q.sql, gpu_ms, cpu_ms,
                gpu_ms <= cpu_ms ? "GPU" : "CPU");
  }
  std::printf("%-68s %12.3f %12.3f\n", "TOTAL (single processor)", gpu_total,
              cpu_total);
  std::printf("%-68s %25.3f\n", "TOTAL (co-processing, per-query winner)",
              best_total);
  PrintFooter(
      "Running everything on one processor leaves time on the table in both "
      "directions; routing each query to its winner (the Planner's job) "
      "beats either alone -- the paper's closing argument, quantified.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
