// Figure 5: multi-attribute conjunctive query -- 60% selectivity per
// attribute combined with AND, sweeping both the attribute count (1-4) and
// the record count. The paper reports the GPU ~2x faster overall and ~20x
// computation-only.

#include "bench/bench_util.h"
#include "src/core/eval_cnf.h"
#include "src/cpu/scan.h"
#include "src/predicate/cnf.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 5",
              "multi-attribute query (AND of 60%-selectivity predicates), "
              "1-4 attributes",
              "GPU ~2x faster overall, ~20x computation-only");
  const db::Table& table = TcpIpTable();
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;

  for (int attrs = 1; attrs <= 4; ++attrs) {
    std::printf("-- %d attribute(s) --\n", attrs);
    PrintRowHeader();
    for (size_t n : RecordSweep()) {
      auto device = MakeDevice();
      std::vector<core::GpuClause> clauses;
      predicate::Cnf cnf;
      for (int a = 0; a < attrs; ++a) {
        const db::Column& column = table.column(a);
        const float threshold = ThresholdForSelectivity(column, n, 0.6);
        core::AttributeBinding binding =
            UploadColumn(device.get(), column, n);
        clauses.push_back({core::GpuPredicate::DepthCompare(
            binding, gpu::CompareOp::kGreater, threshold)});
        predicate::SimplePredicate p;
        p.attr = static_cast<size_t>(a);
        p.op = gpu::CompareOp::kGreater;
        p.constant = threshold;
        cnf.clauses.push_back({p});
      }

      device->ResetCounters();
      Timer gpu_timer;
      auto sel = core::EvalCnf(device.get(), clauses);
      const double gpu_wall = gpu_timer.ElapsedMs();
      if (!sel.ok()) return 1;
      const gpu::GpuTimeBreakdown b = gpu_model.Estimate(device->counters());

      // CPU baseline over a sliced copy of the table.
      db::Table sliced;
      for (int a = 0; a < attrs; ++a) {
        auto col = db::Column::MakeInt24(table.column(a).name(),
                                         SliceInts(table.column(a), n));
        if (!col.ok() || !sliced.AddColumn(std::move(col).ValueOrDie()).ok()) {
          return 1;
        }
      }
      std::vector<uint8_t> mask;
      Timer cpu_timer;
      auto cpu_count = cpu::CnfScan(sliced, cnf, &mask);
      const double cpu_wall = cpu_timer.ElapsedMs();
      if (!cpu_count.ok()) return 1;

      ResultRow row;
      row.label = std::to_string(n);
      row.gpu_model_total_ms = b.TotalMs();
      // Compute-only: exclude the per-attribute copy passes.
      double copy_ms = 0;
      for (const auto& pass : device->counters().pass_log) {
        if (pass.label == "CopyToDepthFP") {
          copy_ms += gpu_model.PassFillMs(pass) +
                     static_cast<double>(pass.depth_writes) *
                         gpu_model.params().depth_write_cycles /
                         (gpu_model.params().clock_hz *
                          gpu_model.params().pixel_pipes) *
                         1e3 +
                     gpu_model.params().pass_setup_ms;
        }
      }
      row.gpu_model_compute_ms = b.TotalMs() - copy_ms;
      row.cpu_model_ms = cpu_model.MultiAttributeScanMs(n, attrs);
      row.gpu_wall_ms = gpu_wall;
      row.cpu_wall_ms = cpu_wall;
      row.check_passed = sel.ValueOrDie().count == cpu_count.ValueOrDie();
      PrintRow(row);
    }
  }
  PrintFooter(
      "Per-attribute cost on the GPU is one copy + one comparison (+ clause "
      "cleanup); the conjunction stays ~2-3x ahead of the CPU overall and an "
      "order of magnitude ahead on computation alone, matching Figure 5's "
      "Time_i scaling.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
