// Ablation: the faithful Routine 4.3 EvalCNF (stencil values {0,1,2} with a
// cleanup pass per clause) vs the pure-conjunction fast path (stencil value
// climbs 1 -> k+1, no cleanup passes) on AND-only queries -- quantifying
// what the general CNF machinery costs when the query needs none of it.

#include "bench/bench_util.h"
#include "src/core/eval_cnf.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Ablation: conjunction evaluation strategy",
              "Routine 4.3 EvalCNF vs single-value-chain fast path, "
              "1M records, 1-4 attributes ANDed",
              "(our extension; the paper always runs Routine 4.3)");
  const db::Table& table = TcpIpTable();
  constexpr size_t kRecords = 1'000'000;
  gpu::PerfModel model;
  PrintRowHeader();

  for (int attrs = 1; attrs <= 4; ++attrs) {
    auto device = MakeDevice();
    std::vector<core::GpuPredicate> conjuncts;
    for (int a = 0; a < attrs; ++a) {
      const db::Column& column = table.column(a);
      const float threshold = ThresholdForSelectivity(column, kRecords, 0.6);
      core::AttributeBinding binding =
          UploadColumn(device.get(), column, kRecords);
      conjuncts.push_back(core::GpuPredicate::DepthCompare(
          binding, gpu::CompareOp::kGreater, threshold));
    }
    std::vector<core::GpuClause> clauses;
    for (const auto& p : conjuncts) clauses.push_back({p});

    device->ResetCounters();
    Timer t1;
    auto general = core::EvalCnf(device.get(), clauses);
    const double general_wall = t1.ElapsedMs();
    if (!general.ok()) return 1;
    const double general_ms = model.EstimateMs(device->counters());
    const uint64_t general_passes = device->counters().passes;

    device->ResetCounters();
    Timer t2;
    auto fast = core::EvalConjunction(device.get(), conjuncts);
    const double fast_wall = t2.ElapsedMs();
    if (!fast.ok()) return 1;
    const double fast_ms = model.EstimateMs(device->counters());
    const uint64_t fast_passes = device->counters().passes;

    ResultRow row;
    row.label = std::to_string(attrs) + " attrs";
    row.gpu_model_total_ms = general_ms;  // Routine 4.3
    row.gpu_model_compute_ms = fast_ms;   // fast path (for contrast)
    row.cpu_model_ms = 0;
    row.gpu_wall_ms = general_wall;
    row.cpu_wall_ms = fast_wall;
    row.check_passed =
        general.ValueOrDie().count == fast.ValueOrDie().count &&
        fast_passes < general_passes;
    PrintRow(row);
    std::printf("    passes: routine-4.3=%llu fast-path=%llu\n",
                static_cast<unsigned long long>(general_passes),
                static_cast<unsigned long long>(fast_passes));
  }
  PrintFooter(
      "Column 2 is Routine 4.3, column 3 the conjunction fast path: the "
      "cleanup pass per clause (~0.29 ms each at 1M records) is the entire "
      "difference; results are identical.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
