// Google-benchmark microbenchmarks of the pipeline simulator and the real
// CPU baselines on this machine. These measure the *simulator's* wall-clock
// throughput (useful when hacking on the Device hot loop), not 2004 GPU
// performance -- the paper-shape numbers come from the fig* binaries.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "src/core/accumulator.h"
#include "src/core/bitonic_sort.h"
#include "src/core/compare.h"
#include "src/core/kth_largest.h"
#include "src/core/range.h"
#include "src/core/semilinear.h"
#include "src/cpu/aggregate.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace {

const db::Table& BenchTable() {
  static const db::Table* table =
      new db::Table(db::MakeTcpIpTable(100'000).ValueOrDie());
  return *table;
}

core::AttributeBinding Bind(gpu::Device* device, size_t n) {
  const db::Column& column = BenchTable().column(0);
  std::vector<float> values(column.values().begin(),
                            column.values().begin() + n);
  auto tex = gpu::Texture::FromColumns({&values}, 1000);
  auto id = device->UploadTexture(std::move(tex).ValueOrDie());
  (void)device->SetViewport(n);
  core::AttributeBinding b;
  b.texture = id.ValueOrDie();
  b.channel = 0;
  b.encoding = core::DepthEncoding::ExactInt24();
  return b;
}

void BM_SimCopyToDepth(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  gpu::Device device(1000, 100);
  core::AttributeBinding attr = Bind(&device, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CopyToDepth(&device, attr));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimCopyToDepth)->Arg(10'000)->Arg(100'000);

void BM_SimPredicateSelect(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  gpu::Device device(1000, 100);
  core::AttributeBinding attr = Bind(&device, n);
  for (auto _ : state) {
    auto r = core::CompareSelect(&device, attr, gpu::CompareOp::kGreater,
                                 10000.0);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimPredicateSelect)->Arg(10'000)->Arg(100'000);

void BM_SimRangeSelect(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  gpu::Device device(1000, 100);
  core::AttributeBinding attr = Bind(&device, n);
  for (auto _ : state) {
    auto r = core::RangeSelect(&device, attr, 1000.0, 100000.0);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimRangeSelect)->Arg(10'000)->Arg(100'000);

void BM_SimKthLargest(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  gpu::Device device(1000, 100);
  core::AttributeBinding attr = Bind(&device, n);
  const int bits = BenchTable().column(0).bit_width();
  for (auto _ : state) {
    auto r = core::KthLargest(&device, attr, bits, n / 2);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimKthLargest)->Arg(10'000)->Arg(100'000);

void BM_SimAccumulate(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  gpu::Device device(1000, 100);
  core::AttributeBinding attr = Bind(&device, n);
  const int bits = BenchTable().column(0).bit_width();
  for (auto _ : state) {
    auto r = core::Accumulate(&device, attr.texture, 0, bits);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimAccumulate)->Arg(10'000)->Arg(100'000);

void BM_SimBitonicSort(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto& col = BenchTable().column(0).values();
  std::vector<float> values(col.begin(), col.begin() + n);
  for (auto _ : state) {
    gpu::Device device(128, 128);
    benchmark::DoNotOptimize(core::BitonicSort(&device, values));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimBitonicSort)->Arg(1024)->Arg(4096);

void BM_SimSemilinearSelect(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  gpu::Device device(1000, 100);
  core::AttributeBinding attr = Bind(&device, n);
  core::SemilinearQuery query;
  query.weights = {1.0f, 0, 0, 0};
  query.op = gpu::CompareOp::kGreaterEqual;
  query.b = 10000.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::SemilinearSelect(&device, attr.texture, query));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimSemilinearSelect)->Arg(10'000)->Arg(100'000);

void BM_CpuStdSort(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto& col = BenchTable().column(0).values();
  for (auto _ : state) {
    std::vector<float> values(col.begin(), col.begin() + n);
    std::sort(values.begin(), values.end());
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuStdSort)->Arg(1024)->Arg(4096);

void BM_CpuPredicateScan(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto& col = BenchTable().column(0).values();
  std::vector<float> values(col.begin(), col.begin() + n);
  std::vector<uint8_t> mask;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu::PredicateScan(
        values, gpu::CompareOp::kGreater, 10000.0f, &mask));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuPredicateScan)->Arg(10'000)->Arg(100'000);

void BM_CpuQuickSelect(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto& col = BenchTable().column(0).values();
  std::vector<float> values(col.begin(), col.begin() + n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu::QuickSelectLargest(values, n / 2));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuQuickSelect)->Arg(10'000)->Arg(100'000);

void BM_CpuSum(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto& col = BenchTable().column(0).values();
  std::vector<float> values(col.begin(), col.begin() + n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu::SumInt(values));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuSum)->Arg(10'000)->Arg(100'000);

}  // namespace
}  // namespace gpudb
