// Figure 2: time to copy attribute values from a texture into the depth
// buffer, as a function of record count. The paper shows a near-linear
// increase and identifies the copy as the dominant fixed cost of the
// depth-test algorithms (Sections 5.4 and 6.1 "Copy Time").

#include "bench/bench_util.h"
#include "src/core/compare.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 2", "copy of data values from texture to depth buffer",
              "almost linear increase in copy time with record count");
  PrintRowHeader();
  const db::Column& column = *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  gpu::PerfModel model;

  double ms_per_million_first = 0;
  for (size_t n : RecordSweep()) {
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);
    device->ResetCounters();
    Timer timer;
    if (!core::CopyToDepth(device.get(), attr).ok()) return 1;
    const double wall = timer.ElapsedMs();
    const gpu::GpuTimeBreakdown b = model.Estimate(device->counters());

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = b.TotalMs();
    row.gpu_model_compute_ms = b.ComputeMs();
    row.cpu_model_ms = 0;  // no CPU analogue in this figure
    row.gpu_wall_ms = wall;
    // Linearity check: ms per million records stays within 5% of the first
    // measurement.
    const double per_million = b.TotalMs() / (static_cast<double>(n) / 1e6);
    if (ms_per_million_first == 0) ms_per_million_first = per_million;
    row.check_passed =
        per_million > 0.95 * ms_per_million_first &&
        per_million < 1.05 * ms_per_million_first / 0.95 * 1.0;
    PrintRow(row);
  }
  PrintFooter(
      "Copy time grows linearly (constant ms per million records), matching "
      "the paper's Figure 2; ~1.7 ms per million records in the calibrated "
      "model.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
