// Extension bench: GPU bitonic merge sort (Section 2.2 / future work in
// Section 7) vs the CPU comparison sort. The paper's judgement -- "the
// algorithm can be quite slow for database operations on large databases" --
// falls out of the n log^2 n fragment-program work against the CPU's
// n log n.

#include <algorithm>

#include "bench/bench_util.h"
#include "src/core/bitonic_sort.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Extension: bitonic sort",
              "GPU bitonic merge sort vs CPU comparison sort",
              "\"the algorithm can be quite slow for database operations on "
              "large databases\" (Section 2.2)");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;

  for (size_t n : {size_t{4096}, size_t{65536}, size_t{262144},
                   size_t{1048576}}) {
    // Power-of-two framebuffer so a padded million-element network fits.
    gpu::Device device(1024, 1024);
    const std::vector<float> values = Slice(column, n);

    device.ResetCounters();
    Timer gpu_timer;
    auto sorted = core::BitonicSort(&device, values);
    const double gpu_wall = gpu_timer.ElapsedMs();
    if (!sorted.ok()) return 1;
    const gpu::GpuTimeBreakdown b = gpu_model.Estimate(device.counters());

    std::vector<float> expected = values;
    Timer cpu_timer;
    std::sort(expected.begin(), expected.end());
    const double cpu_wall = cpu_timer.ElapsedMs();

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = b.TotalMs() - b.buffer_readback_ms;
    row.gpu_model_compute_ms = b.fill_ms;
    row.cpu_model_ms = cpu_model.SortMs(n);
    row.gpu_wall_ms = gpu_wall;
    row.cpu_wall_ms = cpu_wall;
    row.check_passed = sorted.ValueOrDie() == expected;
    PrintRow(row);
    std::printf("    network steps: %llu (log^2 n passes + ping-pong copies)\n",
                static_cast<unsigned long long>(core::BitonicStepCount(n)));
  }
  PrintFooter(
      "The GPU loses by ~10x at a million records: each of the ~210 network "
      "steps is a full-screen fragment-program pass plus a render-to-texture "
      "copy, confirming why the paper leaves sorting to future hardware.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
