// Extension bench: GPU histogram construction and histogram-based equi-join
// selectivity estimation -- the use case the paper points at in Section 5.11
// ("several algorithms have been designed to implement join operations
// efficiently using selectivity estimation").

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/histogram.h"
#include "src/db/datagen.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Extension: histogram + join selectivity",
              "GPU equi-width histograms feeding equi-join size estimates",
              "selectivity counts via occlusion queries (Section 5.11)");
  gpu::PerfModel model;

  std::printf("%-10s %10s %14s %14s %12s %12s\n", "buckets", "records",
              "gpu_model_ms", "est_join_size", "exact_size", "rel_error");
  const size_t n = 1'000'000;
  auto a_table = db::MakeZipfTable(n, 1 << 16, 1.05, /*seed=*/61);
  auto b_table = db::MakeUniformTable(n, 16, 1, /*seed=*/62);
  if (!a_table.ok() || !b_table.ok()) return 1;
  const db::Column& a_col = a_table.ValueOrDie().column(0);
  const db::Column& b_col = b_table.ValueOrDie().column(0);

  // Exact equi-join size for reference.
  std::vector<uint64_t> freq(1 << 16, 0);
  for (float v : a_col.values()) ++freq[static_cast<uint32_t>(v)];
  uint64_t exact = 0;
  for (float v : b_col.values()) exact += freq[static_cast<uint32_t>(v)];

  for (int buckets : {16, 64, 256, 1024}) {
    auto device = MakeDevice();
    core::AttributeBinding a_attr = UploadColumn(device.get(), a_col, n);
    device->ResetCounters();
    auto ha = core::GpuHistogram(device.get(), a_attr, 0, 1 << 16, buckets);
    if (!ha.ok()) return 1;
    const double hist_ms = model.EstimateMs(device->counters());

    core::AttributeBinding b_attr = UploadColumn(device.get(), b_col, n);
    auto hb = core::GpuHistogram(device.get(), b_attr, 0, 1 << 16, buckets);
    if (!hb.ok()) return 1;

    auto est = core::EstimateEquiJoinSize(ha.ValueOrDie(), hb.ValueOrDie());
    if (!est.ok()) return 1;
    const double rel_err =
        std::abs(est.ValueOrDie() - static_cast<double>(exact)) /
        static_cast<double>(exact);
    std::printf("%-10d %10zu %14.3f %14.0f %12llu %11.1f%%\n", buckets, n,
                hist_ms, est.ValueOrDie(),
                static_cast<unsigned long long>(exact), rel_err * 100.0);
  }
  PrintFooter(
      "One histogram costs copy + (buckets+1) counting passes; even the "
      "1024-bucket build stays in single-digit simulated milliseconds while "
      "the join-size estimate converges on the exact answer as buckets "
      "shrink toward distinct values.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
