// Ablation: Accumulator's per-bit test via the alpha test vs rejecting
// fragments inside the fragment program with KILL. The paper: "It is
// possible to perform the comparison and reject fragments directly in the
// fragment program, but it is faster in practice to use the alpha test"
// (Section 4.3.3).

#include "bench/bench_util.h"
#include "src/core/accumulator.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Ablation: Accumulator bit test",
              "alpha-test TestBit vs in-program KILL",
              "the alpha test is faster in practice (Section 4.3.3)");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  const int bits = column.bit_width();
  gpu::PerfModel model;

  for (size_t n : RecordSweep()) {
    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);

    device->ResetCounters();
    Timer t1;
    auto alpha_sum = core::Accumulate(device.get(), attr.texture, 0, bits);
    const double alpha_wall = t1.ElapsedMs();
    if (!alpha_sum.ok()) return 1;
    const double alpha_ms = model.EstimateMs(device->counters());

    core::AccumulatorOptions kill_options;
    kill_options.use_alpha_test = false;
    device->ResetCounters();
    Timer t2;
    auto kill_sum =
        core::Accumulate(device.get(), attr.texture, 0, bits, kill_options);
    const double kill_wall = t2.ElapsedMs();
    if (!kill_sum.ok()) return 1;
    const double kill_ms = model.EstimateMs(device->counters());

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = alpha_ms;  // alpha-test strategy
    row.gpu_model_compute_ms = kill_ms; // KILL strategy (for contrast)
    row.cpu_model_ms = 0;
    row.gpu_wall_ms = alpha_wall;
    row.cpu_wall_ms = kill_wall;
    row.check_passed = alpha_sum.ValueOrDie() == kill_sum.ValueOrDie() &&
                       alpha_ms < kill_ms;
    PrintRow(row);
  }
  PrintFooter(
      "Column 2 is the alpha-test strategy (5-instruction program), column 3 "
      "the in-program-KILL strategy (7 instructions): identical sums, ~40% "
      "more fragment-program work for KILL, matching the paper's preference "
      "for the alpha test.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
