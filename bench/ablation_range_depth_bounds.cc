// Ablation: the depth-bounds range query (Routine 4.4) vs the same range
// expressed as a two-predicate CNF. Quantifies the paper's claim that with
// GL_EXT_depth_bounds_test "the computational time ... is comparable to the
// time required in evaluating a single predicate".

#include "bench/bench_util.h"
#include "src/core/range.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Ablation: range query strategy",
              "depth-bounds test (Routine 4.4) vs two-pass CNF range",
              "depth bounds evaluates both comparisons in one pass");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  gpu::PerfModel model;

  for (size_t n : RecordSweep()) {
    const float low = ThresholdForSelectivity(column, n, 0.8);
    const float high = ThresholdForSelectivity(column, n, 0.2);

    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);
    device->ResetCounters();
    Timer t1;
    auto bounds = core::RangeSelect(device.get(), attr, low, high);
    const double bounds_wall = t1.ElapsedMs();
    if (!bounds.ok()) return 1;
    const double bounds_ms = model.EstimateMs(device->counters());
    const uint64_t bounds_passes = device->counters().passes;

    device->ResetCounters();
    Timer t2;
    auto two_pass = core::RangeSelectTwoPass(device.get(), attr, low, high);
    const double two_wall = t2.ElapsedMs();
    if (!two_pass.ok()) return 1;
    const double two_ms = model.EstimateMs(device->counters());
    const uint64_t two_passes = device->counters().passes;

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = bounds_ms;   // depth-bounds strategy
    row.gpu_model_compute_ms = two_ms;    // two-pass strategy (for contrast)
    row.cpu_model_ms = 0;
    row.gpu_wall_ms = bounds_wall;
    row.cpu_wall_ms = two_wall;
    row.check_passed = bounds.ValueOrDie() == two_pass.ValueOrDie() &&
                       bounds_passes < two_passes;
    PrintRow(row);
    std::printf("    passes: depth-bounds=%llu two-pass=%llu\n",
                static_cast<unsigned long long>(bounds_passes),
                static_cast<unsigned long long>(two_passes));
  }
  PrintFooter(
      "Column 2 (gpu_model_ms) is the depth-bounds strategy, column 3 the "
      "two-pass CNF strategy: the extension saves the second comparison and "
      "the mask-normalization passes on identical results.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
