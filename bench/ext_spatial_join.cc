// Extension bench: screen-space spatial overlap join in the style of
// Sun et al. [35] -- the prior work the paper builds on (Section 2.1 reports
// "a speedup of nearly 5 times on intersection joins ... when compared
// against their software implementation"). Two layers of convex polygons
// are joined by rasterized-footprint overlap, with CPU bounding-box pruning
// feeding the GPU's per-pair stencil/occlusion test.

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/spatial_join.h"

namespace gpudb {
namespace bench {
namespace {

/// Random convex polygon: a triangle/quad/hexagon inscribed in a circle.
core::Polygon2D RandomConvex(Random* rng, float screen) {
  const float cx = static_cast<float>(rng->NextDouble(60, screen - 60));
  const float cy = static_cast<float>(rng->NextDouble(60, screen - 60));
  const float r = static_cast<float>(rng->NextDouble(10, 50));
  const int sides = 3 + static_cast<int>(rng->NextUint64(4));
  const double phase = rng->NextDouble(0, 6.28);
  core::Polygon2D poly;
  for (int s = 0; s < sides; ++s) {
    // Increasing angle = positive orientation under the library's cross
    // product convention.
    const double angle = phase + 6.283185307179586 * s / sides;
    poly.vertices.emplace_back(
        cx + r * static_cast<float>(std::cos(angle)),
        cy + r * static_cast<float>(std::sin(angle)));
  }
  return poly;
}

int Run() {
  PrintHeader("Extension: screen-space spatial overlap join",
              "two layers of convex polygons, footprint-overlap join",
              "Sun et al. [35] report ~5x vs software on intersection joins "
              "(Section 2.1); the technique \"is quite conservative\"");
  gpu::PerfModel model;
  std::printf("%-10s %10s %14s %14s %12s %10s\n", "layer", "pairs",
              "gpu_model_ms", "gpu_wall_ms", "cpu_wall_ms", "agree");

  for (size_t count : {size_t{50}, size_t{100}, size_t{200}}) {
    Random rng(900 + count);
    gpu::Device device(1000, 1000);
    std::vector<core::Polygon2D> layer_a, layer_b;
    for (size_t i = 0; i < count; ++i) {
      layer_a.push_back(RandomConvex(&rng, 1000));
      layer_b.push_back(RandomConvex(&rng, 1000));
    }

    device.ResetCounters();
    Timer gpu_timer;
    auto pairs = core::SpatialOverlapJoin(&device, layer_a, layer_b);
    const double gpu_wall = gpu_timer.ElapsedMs();
    if (!pairs.ok()) {
      std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
      return 1;
    }
    const double gpu_ms = model.EstimateMs(device.counters());

    // CPU exact SAT join for comparison; the screen-space result may differ
    // on sub-pixel contacts (the documented conservativeness), so report
    // the agreement rate (fraction of SAT-positive pairs the GPU found)
    // rather than asserting equality.
    std::vector<std::vector<bool>> gpu_hit(
        layer_a.size(), std::vector<bool>(layer_b.size(), false));
    for (const auto& [i, j] : pairs.ValueOrDie()) gpu_hit[i][j] = true;
    Timer cpu_timer;
    size_t sat_positive = 0, agreements = 0;
    for (size_t i = 0; i < layer_a.size(); ++i) {
      for (size_t j = 0; j < layer_b.size(); ++j) {
        if (core::ConvexPolygonsIntersect(layer_a[i], layer_b[j])) {
          ++sat_positive;
          agreements += gpu_hit[i][j] ? 1 : 0;
        }
      }
    }
    const double cpu_wall = cpu_timer.ElapsedMs();
    std::printf("%-10zu %10zu %14.3f %14.2f %12.2f %9.1f%%\n", count,
                pairs.ValueOrDie().size(), gpu_ms, gpu_wall, cpu_wall,
                sat_positive == 0
                    ? 100.0
                    : 100.0 * static_cast<double>(agreements) /
                          static_cast<double>(sat_positive));
  }
  PrintFooter(
      "Bounding boxes prune most pairs on the CPU for free; each surviving "
      "pair costs two scissored rasterization passes plus an occlusion "
      "readback. Agreement with exact SAT intersection sits near 100%, "
      "short of it only on sub-pixel contacts -- the conservativeness Sun "
      "et al. acknowledge.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
