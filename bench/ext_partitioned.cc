// Extension bench: out-of-core execution (paper Section 6.1 "Memory
// Management") -- operations over a table larger than the framebuffer by
// tiling, with per-tile texture swaps charged to the bus model.

#include "bench/bench_util.h"
#include "src/core/partition.h"
#include "src/cpu/aggregate.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/db/datagen.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Extension: out-of-core partitioned execution",
              "2M-record column on a 1M-pixel device (2 tiles)",
              "\"we would use out-of-core techniques and swap textures in "
              "and out of video memory\" (Section 6.1)");
  const size_t n = 2'000'000;
  auto table = db::MakeUniformTable(n, 19, 1, /*seed=*/63);
  if (!table.ok()) return 1;
  const db::Column& col = table.ValueOrDie().column(0);
  const auto& values = col.values();
  gpu::PerfModel model;
  cpu::XeonModel cpu_model;

  gpu::Device device(1000, 1000);
  auto part = core::PartitionedColumn::Make(&device, col);
  if (!part.ok()) return 1;
  std::printf("tiles: %zu, records: %llu, bit width: %d\n",
              part.ValueOrDie().tile_count(),
              static_cast<unsigned long long>(
                  part.ValueOrDie().total_records()),
              part.ValueOrDie().bit_width());
  PrintRowHeader();

  {  // COUNT with a predicate.
    device.ResetCounters();
    Timer t;
    auto count = part.ValueOrDie().Count(gpu::CompareOp::kGreaterEqual,
                                         200000.0);
    const double wall = t.ElapsedMs();
    if (!count.ok()) return 1;
    std::vector<uint8_t> mask;
    const uint64_t expected = cpu::PredicateScan(
        values, gpu::CompareOp::kGreaterEqual, 200000.0f, &mask);
    ResultRow row;
    row.label = "count";
    row.gpu_model_total_ms = model.EstimateMs(device.counters());
    row.gpu_model_compute_ms = model.Estimate(device.counters()).fill_ms;
    row.cpu_model_ms = cpu_model.PredicateScanMs(n);
    row.gpu_wall_ms = wall;
    row.check_passed = count.ValueOrDie() == expected;
    PrintRow(row);
  }
  {  // SUM.
    device.ResetCounters();
    Timer t;
    auto sum = part.ValueOrDie().Sum();
    const double wall = t.ElapsedMs();
    if (!sum.ok()) return 1;
    ResultRow row;
    row.label = "sum";
    row.gpu_model_total_ms = model.EstimateMs(device.counters());
    row.gpu_model_compute_ms = model.Estimate(device.counters()).fill_ms;
    row.cpu_model_ms = cpu_model.SumMs(n);
    row.gpu_wall_ms = wall;
    row.check_passed = sum.ValueOrDie() == cpu::SumInt(values);
    PrintRow(row);
  }
  {  // Median.
    device.ResetCounters();
    Timer t;
    auto median = part.ValueOrDie().Median();
    const double wall = t.ElapsedMs();
    if (!median.ok()) return 1;
    auto cpu_median = cpu::Median(values);
    if (!cpu_median.ok()) return 1;
    ResultRow row;
    row.label = "median";
    row.gpu_model_total_ms = model.EstimateMs(device.counters());
    row.gpu_model_compute_ms = model.Estimate(device.counters()).fill_ms;
    row.cpu_model_ms = cpu_model.QuickSelectMs(n);
    row.gpu_wall_ms = wall;
    row.check_passed = median.ValueOrDie() ==
                       static_cast<uint32_t>(cpu_median.ValueOrDie());
    PrintRow(row);
  }
  // Constrained video memory: with room for only one tile's texture, every
  // cross-tile pass alternates between the tiles and each touch swaps the
  // other tile out -- the texture traffic Section 6.1 predicts, charged at
  // AGP bandwidth by the model.
  {
    gpu::Device small(1000, 1000);
    // Each 1M-texel single-channel tile is 4 MB; allow ~1.5 tiles.
    if (!small.SetVideoMemoryBudget(6ull * 1024 * 1024).ok()) return 1;
    auto swapped = core::PartitionedColumn::Make(&small, col);
    if (!swapped.ok()) return 1;
    small.ResetCounters();
    Timer t;
    auto median = swapped.ValueOrDie().Median();
    const double wall = t.ElapsedMs();
    if (!median.ok()) return 1;
    const gpu::GpuTimeBreakdown b = model.Estimate(small.counters());
    std::printf(
        "\nmedian again with video memory capped at 1.5 tiles: %.3f ms "
        "(swap traffic %.3f ms across %llu swap-ins, %.1f MB re-uploaded; "
        "wall %.0f ms)\n",
        b.TotalMs(), b.swap_ms,
        static_cast<unsigned long long>(small.counters().texture_swap_ins),
        static_cast<double>(small.counters().bytes_swapped) / 1e6, wall);
  }
  PrintFooter(
      "COUNT and SUM tile perfectly (counts are additive). The order "
      "statistic pays tiles x bit_width copy passes -- the out-of-core tax "
      "Section 6.1 anticipates -- and drops from ~3x faster to roughly CPU "
      "parity, still with no data rearrangement. Capping video memory below "
      "the working set adds AGP swap traffic on top: exactly the "
      "\"swap textures in and out of video memory\" cost the paper warns "
      "about.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
