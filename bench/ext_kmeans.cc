// Extension bench: k-means clustering (paper Section 7 future work:
// "classification, and clustering"). The algorithm straddles the paper's
// Section 6.2 gain classes: the ASSIGNMENT step is a selection (Voronoi
// cells = conjunctions of semi-linear half-planes -- high-gain class), while
// the UPDATE step is an aggregation (masked coordinate sums through the
// Accumulator -- the low-gain class of Figure 10). The per-phase breakdown
// makes the split visible.

#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/core/accumulator.h"
#include "src/core/eval_cnf.h"
#include "src/core/kmeans.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Extension: k-means clustering",
              "k=4 over 100K integer points, per-phase cost split",
              "clustering as future work (Section 7); assignment is "
              "high-gain selection, update is low-gain accumulation");
  constexpr size_t kPoints = 100'000;
  constexpr int kBits = 10;
  Random rng(777);
  std::vector<float> xs(kPoints), ys(kPoints);
  std::vector<uint32_t> xs_i(kPoints), ys_i(kPoints);
  const std::vector<std::pair<float, float>> truth = {
      {200, 200}, {800, 250}, {300, 800}, {750, 750}};
  for (size_t i = 0; i < kPoints; ++i) {
    const auto& [cx, cy] = truth[i % truth.size()];
    const double x =
        std::clamp(cx + 60.0 * rng.NextGaussian(), 0.0, 1023.0);
    const double y =
        std::clamp(cy + 60.0 * rng.NextGaussian(), 0.0, 1023.0);
    xs_i[i] = static_cast<uint32_t>(x);
    ys_i[i] = static_cast<uint32_t>(y);
    xs[i] = static_cast<float>(xs_i[i]);
    ys[i] = static_cast<float>(ys_i[i]);
  }
  gpu::Device device(1000, 1000);
  auto tex = gpu::Texture::FromColumns({&xs, &ys}, 1000);
  if (!tex.ok()) return 1;
  auto id = device.UploadTexture(std::move(tex).ValueOrDie());
  if (!id.ok() || !device.SetViewport(kPoints).ok()) return 1;
  const std::vector<std::pair<float, float>> init = {
      {100, 100}, {900, 100}, {100, 900}, {900, 900}};

  gpu::PerfModel model;
  device.ResetCounters();
  Timer gpu_timer;
  auto result = core::KMeans2D(&device, id.ValueOrDie(), kBits, init, 20);
  const double gpu_wall = gpu_timer.ElapsedMs();
  if (!result.ok()) return 1;
  const gpu::GpuTimeBreakdown b = model.Estimate(device.counters());

  // Per-phase split from the pass log: Accumulator passes run TestBitFP.
  double update_ms = 0, assign_ms = 0;
  for (const auto& pass : device.counters().pass_log) {
    if (pass.label == "TestBitFP") {
      update_ms += model.PassFillMs(pass) + model.params().pass_setup_ms;
    } else {
      assign_ms += model.PassFillMs(pass) + model.params().pass_setup_ms;
    }
  }

  Timer cpu_timer;
  const core::KMeansResult cpu_result =
      core::CpuKMeans2D(xs_i, ys_i, init, 20);
  const double cpu_wall = cpu_timer.ElapsedMs();

  bool same = result.ValueOrDie().iterations_run == cpu_result.iterations_run;
  for (size_t j = 0; same && j < init.size(); ++j) {
    same = result.ValueOrDie().cluster_sizes[j] == cpu_result.cluster_sizes[j];
  }

  std::printf("iterations:           %d (converged: %s, matches CPU: %s)\n",
              result.ValueOrDie().iterations_run,
              result.ValueOrDie().converged ? "yes" : "no",
              same ? "yes" : "MISMATCH");
  std::printf("gpu model total:      %.2f ms\n", b.TotalMs());
  std::printf("  assignment passes:  %.2f ms (selection class, ~%d passes)\n",
              assign_ms,
              static_cast<int>(device.counters().passes));
  std::printf("  update (sums):      %.2f ms (accumulation class)\n",
              update_ms);
  std::printf("  occlusion readbacks:%.2f ms\n",
              static_cast<double>(device.counters().occlusion_readbacks) *
                  model.params().occlusion_readback_ms);
  std::printf("wall: gpu sim %.0f ms, cpu reference %.1f ms\n", gpu_wall,
              cpu_wall);
  for (size_t j = 0; j < init.size(); ++j) {
    std::printf("centroid %zu: (%.1f, %.1f), %llu points\n", j,
                result.ValueOrDie().centroids[j].first,
                result.ValueOrDie().centroids[j].second,
                static_cast<unsigned long long>(
                    result.ValueOrDie().cluster_sizes[j]));
  }
  PrintFooter(
      "The update step's masked coordinate sums dominate the GPU cost "
      "(Figure 10's weakness inherited), while the Voronoi assignment rides "
      "the fast selection path -- k-means on 2004 hardware wants the "
      "co-processor split: GPU assignment, CPU update.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
