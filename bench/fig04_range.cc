// Figure 4: range query at 60% selectivity (values between the 20th and
// 80th percentile) via the depth bounds test. The paper reports ~5.5x
// overall and ~40x computation-only speedups.

#include <algorithm>

#include "bench/bench_util.h"
#include "src/core/range.h"
#include "src/cpu/scan.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 4",
              "range query (p20 <= data_count <= p80), 60% selectivity",
              "GPU ~5.5x faster overall, ~40x faster computation-only");
  PrintRowHeader();
  const db::Column& column =
      *TcpIpTable().ColumnByName("data_count").ValueOrDie();
  gpu::PerfModel gpu_model;
  cpu::XeonModel cpu_model;

  for (size_t n : RecordSweep()) {
    std::vector<float> sorted = Slice(column, n);
    std::sort(sorted.begin(), sorted.end());
    const float low = sorted[static_cast<size_t>(0.2 * (n - 1))];
    const float high = sorted[static_cast<size_t>(0.8 * (n - 1))];

    auto device = MakeDevice();
    core::AttributeBinding attr = UploadColumn(device.get(), column, n);
    device->ResetCounters();
    Timer gpu_timer;
    auto gpu_count = core::RangeSelect(device.get(), attr, low, high);
    const double gpu_wall = gpu_timer.ElapsedMs();
    if (!gpu_count.ok()) return 1;
    const gpu::GpuTimeBreakdown b = gpu_model.Estimate(device->counters());

    const std::vector<float> values = Slice(column, n);
    std::vector<uint8_t> mask;
    Timer cpu_timer;
    const uint64_t cpu_count = cpu::RangeScan(values, low, high, &mask);
    const double cpu_wall = cpu_timer.ElapsedMs();

    ResultRow row;
    row.label = std::to_string(n);
    row.gpu_model_total_ms = b.TotalMs();
    const gpu::PassRecord& bounds_pass = device->counters().pass_log.back();
    row.gpu_model_compute_ms = gpu_model.PassFillMs(bounds_pass) +
                               gpu_model.params().pass_setup_ms +
                               gpu_model.params().occlusion_readback_ms;
    row.cpu_model_ms = cpu_model.RangeScanMs(n);
    row.gpu_wall_ms = gpu_wall;
    row.cpu_wall_ms = cpu_wall;
    row.check_passed = gpu_count.ValueOrDie() == cpu_count;
    PrintRow(row);
  }
  PrintFooter(
      "The depth-bounds test evaluates both comparisons in one pass, so the "
      "GPU range query costs the same as a single predicate while the CPU "
      "pays for two comparisons: overall ~5.5x, compute-only ~40x (Figure 4).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
