// Extension bench: GROUP BY roll-up (paper Section 7 future work: "OLAP and
// data mining tasks such as data cube roll up and drill-down"). Measures how
// the per-group cost (discovery + selection + masked aggregate) scales with
// group cardinality.

#include <map>

#include "bench/bench_util.h"
#include "src/core/group_by.h"
#include "src/db/datagen.h"

namespace gpudb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Extension: GROUP BY roll-up",
              "SELECT key, SUM(value) GROUP BY key at 1M records",
              "data cube roll-up built from selections + masked aggregates "
              "(Section 7 future work)");
  constexpr size_t n = 1'000'000;
  gpu::PerfModel model;

  std::printf("%-8s %14s %14s %16s %8s\n", "groups", "gpu_model_ms",
              "gpu_wall_ms", "passes", "check");
  for (int key_bits : {1, 2, 3, 4}) {  // 2..16 groups
    auto keys_table = db::MakeUniformTable(n, key_bits, 1, /*seed=*/71);
    auto values_table = db::MakeUniformTable(n, 12, 1, /*seed=*/72);
    if (!keys_table.ok() || !values_table.ok()) return 1;
    const db::Column& keys = keys_table.ValueOrDie().column(0);
    const db::Column& values = values_table.ValueOrDie().column(0);

    gpu::Device device(1000, 1000);
    core::AttributeBinding value_attr = UploadColumn(&device, values, n);
    core::AttributeBinding key_attr = UploadColumn(&device, keys, n);
    device.ResetCounters();
    Timer timer;
    auto rows = core::GroupByAggregate(&device, key_attr, key_bits,
                                       value_attr, 12,
                                       core::AggregateKind::kSum);
    const double wall = timer.ElapsedMs();
    if (!rows.ok()) return 1;

    // CPU reference.
    std::map<uint32_t, uint64_t> expected;
    for (size_t i = 0; i < n; ++i) {
      expected[keys.int_value(i)] += values.int_value(i);
    }
    bool check = rows.ValueOrDie().size() == expected.size();
    for (const core::GroupByRow& row : rows.ValueOrDie()) {
      check = check && expected.count(row.key) &&
              row.aggregate == static_cast<double>(expected[row.key]);
    }
    std::printf("%-8zu %14.3f %14.2f %16llu %8s\n",
                rows.ValueOrDie().size(),
                model.EstimateMs(device.counters()), wall,
                static_cast<unsigned long long>(device.counters().passes),
                check ? "OK" : "FAIL");
  }
  PrintFooter(
      "Cost grows linearly in group count: each group pays one selection "
      "pass plus a 12-bit Accumulator (13 passes), and discovery pays a "
      "bit-search per distinct key -- workable for OLAP-style cardinalities, "
      "hopeless for high-cardinality keys, which is why the paper defers "
      "grouping to future hardware.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace gpudb

int main(int argc, char** argv) {
  gpudb::bench::InitBench(argc, argv);
  return gpudb::bench::Run();
}
